"""Scheduling policies evaluated in the paper.

A :class:`SchedulingPolicy` bundles the three knobs DiAS combines (§1, §3):

* whether priorities preempt (evict) lower-priority jobs,
* the per-priority task-drop ratios (differential approximation), and
* the sprinting configuration (differential sprinting).

Factory methods build the named configurations used throughout the evaluation:

========  ===========================================================
``P``     preemptive priority, no approximation, no sprinting
``NP``    non-preemptive priority, no approximation, no sprinting
``NPS``   non-preemptive priority + sprinting (Table 2 baseline)
``DA``    non-preemptive + differential approximation, e.g. DA(0,20)
``DiAS``  non-preemptive + approximation + sprinting, e.g. DiAS(0,20)
========  ===========================================================

Drop-ratio subscripts follow the paper's notation ``DA(θ_high, …, θ_low)``
listed from the highest to the lowest priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence

from repro.core.config import SprintConfig


@dataclass(frozen=True)
class SchedulingPolicy:
    """A complete scheduling configuration.

    Attributes
    ----------
    name:
        Display name, e.g. ``"P"`` or ``"DA(0/20)"``.
    preemptive:
        If ``True``, a higher-priority arrival evicts the job in execution
        (which later restarts from scratch, wasting the work done so far).
    map_drop_ratios:
        Per-priority map-task drop ratio ``θ_k`` applied to every droppable
        stage of a job.  Missing priorities drop nothing.
    reduce_drop_ratios:
        Per-priority reduce-task drop ratios (the paper mostly drops map
        tasks; reduce dropping is supported for completeness, §4.1).
    sprint:
        Sprinting configuration (disabled by default).
    """

    name: str
    preemptive: bool = False
    map_drop_ratios: Mapping[int, float] = field(default_factory=dict)
    reduce_drop_ratios: Mapping[int, float] = field(default_factory=dict)
    sprint: SprintConfig = field(default_factory=SprintConfig.disabled)

    def __post_init__(self) -> None:
        for label, ratios in (("map", self.map_drop_ratios), ("reduce", self.reduce_drop_ratios)):
            for priority, ratio in ratios.items():
                if not 0.0 <= ratio < 1.0:
                    raise ValueError(
                        f"{label} drop ratio for priority {priority} must be in [0, 1), got {ratio!r}"
                    )

    # ------------------------------------------------------------- accessors
    def map_drop_ratio(self, priority: int) -> float:
        """Map-task drop ratio for ``priority`` (0 when not configured)."""
        return float(self.map_drop_ratios.get(priority, 0.0))

    def reduce_drop_ratio(self, priority: int) -> float:
        """Reduce-task drop ratio for ``priority`` (0 when not configured)."""
        return float(self.reduce_drop_ratios.get(priority, 0.0))

    @property
    def approximates(self) -> bool:
        """Whether any priority class drops tasks."""
        return any(r > 0 for r in self.map_drop_ratios.values()) or any(
            r > 0 for r in self.reduce_drop_ratios.values()
        )

    @property
    def sprints(self) -> bool:
        """Whether sprinting is enabled for at least some priority."""
        if self.sprint.budget_seconds == 0 and not self.sprint.unlimited:
            return False
        if self.sprint.sprint_priorities is not None and not self.sprint.sprint_priorities:
            return False
        return True

    def with_sprint(self, sprint: SprintConfig, name: Optional[str] = None) -> "SchedulingPolicy":
        """Copy of this policy with a different sprint configuration."""
        return replace(self, sprint=sprint, name=name if name is not None else self.name)

    # ------------------------------------------------------------- factories
    @staticmethod
    def preemptive_priority() -> "SchedulingPolicy":
        """``P`` — the production-style preemptive baseline."""
        return SchedulingPolicy(name="P", preemptive=True)

    @staticmethod
    def non_preemptive_priority() -> "SchedulingPolicy":
        """``NP`` — non-preemptive priority, no approximation or sprinting."""
        return SchedulingPolicy(name="NP", preemptive=False)

    @staticmethod
    def sprinted_non_preemptive(sprint: SprintConfig) -> "SchedulingPolicy":
        """``NPS`` — non-preemptive priority plus sprinting (no approximation)."""
        return SchedulingPolicy(name="NPS", preemptive=False, sprint=sprint)

    @staticmethod
    def differential_approximation(
        drop_ratios_by_priority: Mapping[int, float],
        reduce_drop_ratios: Optional[Mapping[int, float]] = None,
        name: Optional[str] = None,
    ) -> "SchedulingPolicy":
        """``DA`` — non-preemptive priority plus per-priority task dropping."""
        label = name if name is not None else _format_name("DA", drop_ratios_by_priority)
        return SchedulingPolicy(
            name=label,
            preemptive=False,
            map_drop_ratios=dict(drop_ratios_by_priority),
            reduce_drop_ratios=dict(reduce_drop_ratios or {}),
        )

    @staticmethod
    def dias(
        drop_ratios_by_priority: Mapping[int, float],
        sprint: SprintConfig,
        reduce_drop_ratios: Optional[Mapping[int, float]] = None,
        name: Optional[str] = None,
    ) -> "SchedulingPolicy":
        """``DiAS`` — the full design: approximation plus sprinting."""
        label = name if name is not None else _format_name("DiAS", drop_ratios_by_priority)
        return SchedulingPolicy(
            name=label,
            preemptive=False,
            map_drop_ratios=dict(drop_ratios_by_priority),
            reduce_drop_ratios=dict(reduce_drop_ratios or {}),
            sprint=sprint,
        )


def _format_name(prefix: str, drop_ratios_by_priority: Mapping[int, float]) -> str:
    """Format a policy name like ``DA(0/20)`` from per-priority drop ratios.

    Ratios are listed from the highest priority to the lowest, matching the
    paper's subscript convention.
    """
    ordered = [
        drop_ratios_by_priority[p] for p in sorted(drop_ratios_by_priority, reverse=True)
    ]
    parts = "/".join(f"{round(100 * r):g}" for r in ordered)
    return f"{prefix}({parts})"
