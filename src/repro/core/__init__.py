"""DiAS core: the paper's primary contribution.

* :mod:`repro.core.config` — sprinting configuration (timeouts, budget,
  replenishment) and policy-wide constants.
* :mod:`repro.core.policies` — scheduling policies: preemptive priority (P),
  non-preemptive priority (NP), sprinted non-preemptive (NPS), differential
  approximation (DA) and the full DiAS (approximation + sprinting).
* :mod:`repro.core.buffers` — per-priority FCFS job buffers.
* :mod:`repro.core.dropper` — task dropping (the Spark
  ``findMissingPartitions`` modification of §3.3).
* :mod:`repro.core.sprinter` — the sprinter: per-job sprint timers, budget
  tracking and replenishment, DVFS actuation.
* :mod:`repro.core.deflator` — the model-guided task deflator that picks the
  approximation level θ_k and sprint timeout T_k for each priority class.
* :mod:`repro.core.dias` — the DiAS controller/simulation that plugs buffers,
  deflator, dropper and sprinter into the processing-engine substrate.
"""

from repro.core.adaptive import AdaptationEvent, AdaptiveDeflationController
from repro.core.buffers import PriorityBuffers
from repro.core.config import SprintConfig
from repro.core.deflator import DeflatorDecision, TaskDeflator
from repro.core.dias import DiASSimulation, DropRatioDecision, SimulationResult
from repro.core.dropper import DropPlan, TaskDropper, find_missing_partitions
from repro.core.policies import SchedulingPolicy
from repro.core.sprinter import Sprinter

__all__ = [
    "AdaptationEvent",
    "AdaptiveDeflationController",
    "PriorityBuffers",
    "SprintConfig",
    "DeflatorDecision",
    "TaskDeflator",
    "DiASSimulation",
    "DropRatioDecision",
    "SimulationResult",
    "DropPlan",
    "TaskDropper",
    "find_missing_partitions",
    "SchedulingPolicy",
    "Sprinter",
]
