"""Per-priority FCFS job buffers (§3.2).

Arriving jobs are immediately placed in the buffer matching their priority;
each buffer is FCFS; the deflator always serves the head of the highest
non-empty buffer.  Evicted jobs return to the *head* of their buffer so they
are the first of their class to be retried (§2.2).

The structure keeps a running total and a descending-sorted priority list so
the hot queries (``__len__`` from every telemetry sample, ``peek_highest`` /
``pop_highest`` from every dispatch) are O(1)/O(priorities) without a sort;
the list is only re-sorted when a previously unseen priority appears.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.engine.job import Job


class PriorityBuffers:
    """A set of FCFS buffers indexed by priority (higher value = higher priority)."""

    def __init__(self, priorities: Optional[Iterable[int]] = None) -> None:
        self._buffers: Dict[int, Deque[Job]] = {}
        if priorities is not None:
            for priority in priorities:
                self._buffers[int(priority)] = deque()
        self._order: List[int] = sorted(self._buffers, reverse=True)
        self._size = 0

    def _buffer_for(self, priority: int) -> Deque[Job]:
        buf = self._buffers.get(priority)
        if buf is None:
            buf = self._buffers[priority] = deque()
            self._order.append(priority)
            self._order.sort(reverse=True)
        return buf

    # --------------------------------------------------------------- state
    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    def priorities(self) -> List[int]:
        """Priorities with a registered buffer, highest first."""
        return list(self._order)

    def depth(self, priority: int) -> int:
        """Number of jobs queued at ``priority``."""
        return len(self._buffers.get(priority, ()))

    def depths(self) -> Dict[int, int]:
        return {priority: len(buf) for priority, buf in self._buffers.items()}

    def depth_rows(self) -> List[Tuple[int, int]]:
        """(priority, depth) pairs in ascending priority order (telemetry)."""
        buffers = self._buffers
        return [(priority, len(buffers[priority])) for priority in reversed(self._order)]

    # ------------------------------------------------------------ mutation
    def push(self, job: Job) -> None:
        """Enqueue an arriving job at the tail of its priority buffer."""
        self._buffer_for(job.priority).append(job)
        self._size += 1

    def push_front(self, job: Job) -> None:
        """Return an evicted job to the head of its priority buffer."""
        self._buffer_for(job.priority).appendleft(job)
        self._size += 1

    def peek_highest(self) -> Optional[Job]:
        """The job that would be dispatched next, without removing it."""
        buffers = self._buffers
        for priority in self._order:
            buf = buffers[priority]
            if buf:
                return buf[0]
        return None

    def highest_waiting_priority(self) -> Optional[int]:
        """Highest priority with at least one queued job."""
        job = self.peek_highest()
        return job.priority if job is not None else None

    def pop_highest(self) -> Optional[Job]:
        """Remove and return the head of the highest non-empty buffer."""
        buffers = self._buffers
        for priority in self._order:
            buf = buffers[priority]
            if buf:
                self._size -= 1
                return buf.popleft()
        return None

    def clear(self) -> None:
        for buf in self._buffers.values():
            buf.clear()
        self._size = 0
