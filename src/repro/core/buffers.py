"""Per-priority FCFS job buffers (§3.2).

Arriving jobs are immediately placed in the buffer matching their priority;
each buffer is FCFS; the deflator always serves the head of the highest
non-empty buffer.  Evicted jobs return to the *head* of their buffer so they
are the first of their class to be retried (§2.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.engine.job import Job


class PriorityBuffers:
    """A set of FCFS buffers indexed by priority (higher value = higher priority)."""

    def __init__(self, priorities: Optional[Iterable[int]] = None) -> None:
        self._buffers: Dict[int, Deque[Job]] = {}
        if priorities is not None:
            for priority in priorities:
                self._buffers[int(priority)] = deque()

    # --------------------------------------------------------------- state
    def __len__(self) -> int:
        return sum(len(buf) for buf in self._buffers.values())

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def priorities(self) -> List[int]:
        """Priorities with a registered buffer, highest first."""
        return sorted(self._buffers, reverse=True)

    def depth(self, priority: int) -> int:
        """Number of jobs queued at ``priority``."""
        return len(self._buffers.get(priority, ()))

    def depths(self) -> Dict[int, int]:
        return {priority: len(buf) for priority, buf in self._buffers.items()}

    # ------------------------------------------------------------ mutation
    def push(self, job: Job) -> None:
        """Enqueue an arriving job at the tail of its priority buffer."""
        self._buffers.setdefault(job.priority, deque()).append(job)

    def push_front(self, job: Job) -> None:
        """Return an evicted job to the head of its priority buffer."""
        self._buffers.setdefault(job.priority, deque()).appendleft(job)

    def peek_highest(self) -> Optional[Job]:
        """The job that would be dispatched next, without removing it."""
        for priority in sorted(self._buffers, reverse=True):
            if self._buffers[priority]:
                return self._buffers[priority][0]
        return None

    def highest_waiting_priority(self) -> Optional[int]:
        """Highest priority with at least one queued job."""
        job = self.peek_highest()
        return job.priority if job is not None else None

    def pop_highest(self) -> Optional[Job]:
        """Remove and return the head of the highest non-empty buffer."""
        for priority in sorted(self._buffers, reverse=True):
            if self._buffers[priority]:
                return self._buffers[priority].popleft()
        return None

    def clear(self) -> None:
        for buf in self._buffers.values():
            buf.clear()
