"""The DiAS controller (§3.2, §3.3) and the end-to-end simulation driver.

The controller reproduces the prototype's state machine:

* arriving jobs are placed in the buffer of their priority class;
* whenever the processing engine is free, the head of the highest non-empty
  buffer is dispatched with its class's approximation level (the dropper
  selects the surviving tasks, mirroring the ``findMissingPartitions``
  modification);
* under a **preemptive** policy a higher-priority arrival evicts the job in
  execution — the work done so far is wasted and the job returns to the head
  of its buffer to be re-run from scratch (the prototype's SIGKILL path);
* under DiAS (non-preemptive), the job in execution always finishes; if
  sprinting is enabled, the sprinter boosts the CPU frequency after the
  class's timeout, subject to the sprint budget;
* the energy meter charges every interval at the idle/busy/sprint power.

:class:`DiASSimulation` wires these pieces to the engine substrate and runs a
whole job trace, returning a :class:`SimulationResult` with the metrics the
paper reports (mean/tail latency per class, queueing/execution decomposition,
resource waste, energy, accuracy loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.buffers import PriorityBuffers
from repro.core.dropper import DropPlan, TaskDropper
from repro.core.policies import SchedulingPolicy
from repro.core.sprinter import Sprinter
from repro.engine.cluster import Cluster
from repro.engine.energy import EnergyMeter
from repro.engine.execution import JobExecution, build_phases
from repro.engine.job import Job
from repro.models.accuracy import AccuracyModel
from repro.simulation.des import Simulator
from repro.simulation.metrics import ClassMetrics, JobRecord, MetricsCollector
from repro.simulation.random_streams import RandomStreams
from repro.telemetry import NULL_HUB, PeriodicSampler, TelemetryHub, kernel_sample_source


@dataclass(frozen=True)
class DropRatioDecision:
    """Per-dispatch drop ratios returned by an online drop-ratio provider."""

    map_drop_ratio: float
    reduce_drop_ratio: float = 0.0

    def __post_init__(self) -> None:
        for value in (self.map_drop_ratio, self.reduce_drop_ratio):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"drop ratios must be in [0, 1), got {value!r}")


@dataclass
class SimulationResult:
    """Everything measured during one simulated run of one policy."""

    policy_name: str
    metrics: MetricsCollector
    duration: float
    completed_jobs: int
    total_energy_joules: float
    sprinted_seconds: float
    evictions: int
    idle_energy_joules: float = 0.0
    busy_energy_joules: float = 0.0
    sprint_energy_joules: float = 0.0

    # ------------------------------------------------------------ accessors
    @property
    def total_energy_kilojoules(self) -> float:
        return self.total_energy_joules / 1000.0

    @property
    def active_energy_joules(self) -> float:
        """Energy spent while actually processing (busy + sprint, no idle)."""
        return self.busy_energy_joules + self.sprint_energy_joules

    @property
    def active_energy_kilojoules(self) -> float:
        return self.active_energy_joules / 1000.0

    def priorities(self) -> List[int]:
        return self.metrics.priorities()

    def class_metrics(self, priority: int) -> ClassMetrics:
        return self.metrics.class_metrics(priority)

    def mean_response_time(self, priority: Optional[int] = None) -> float:
        return self.metrics.mean_response_time(priority)

    def tail_response_time(self, priority: Optional[int] = None, q: float = 95.0) -> float:
        return self.metrics.tail_response_time(priority, q)

    def mean_queueing_time(self, priority: int) -> float:
        return self.class_metrics(priority).queueing_time.mean

    def mean_execution_time(self, priority: int) -> float:
        return self.class_metrics(priority).execution_time.mean

    def mean_accuracy_loss(self, priority: int) -> float:
        return self.class_metrics(priority).accuracy_loss_mean

    @property
    def resource_waste(self) -> float:
        """Fraction of machine time spent re-processing evicted jobs."""
        return self.metrics.resource_waste_fraction()

    @property
    def utilisation(self) -> float:
        return self.metrics.utilisation()

    def relative_difference(
        self, baseline: "SimulationResult", priority: int, metric: str = "mean"
    ) -> float:
        """Relative latency difference vs ``baseline`` in percent (Fig. 7–11).

        Negative values mean this policy is *faster* than the baseline.
        """
        if metric == "mean":
            ours = self.mean_response_time(priority)
            theirs = baseline.mean_response_time(priority)
        elif metric == "tail":
            ours = self.tail_response_time(priority)
            theirs = baseline.tail_response_time(priority)
        else:
            raise ValueError("metric must be 'mean' or 'tail'")
        if theirs == 0:
            return float("nan")
        return 100.0 * (ours - theirs) / theirs


class DiASSimulation:
    """Simulates one scheduling policy over a fixed job trace.

    The controller can run standalone (it then owns its own DES kernel and
    drives the whole trace via :meth:`run`) or be *embedded*, e.g. as one
    cluster of a :class:`~repro.fleet.simulation.FleetSimulation`: pass an
    external ``simulator`` plus a ``stream_namespace`` so several controllers
    can share one kernel and one root seed while drawing independent random
    streams, feed jobs with :meth:`submit`, and collect the result with
    :meth:`finalize` once the shared kernel has drained.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        jobs: Sequence[Job] = (),
        cluster: Optional[Cluster] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        streams: Optional[RandomStreams] = None,
        seed: int = 0,
        drop_ratio_provider: Optional[
            Callable[[Job, float, MetricsCollector], "DropRatioDecision"]
        ] = None,
        simulator: Optional[Simulator] = None,
        stream_namespace: str = "",
        telemetry: TelemetryHub = NULL_HUB,
        metrics: Optional[MetricsCollector] = None,
        telemetry_src: Optional[str] = None,
    ) -> None:
        if not jobs and simulator is None:
            raise ValueError("the job trace must not be empty")
        self.policy = policy
        self.drop_ratio_provider = drop_ratio_provider
        self.jobs = sorted(jobs, key=lambda j: j.arrival_time)
        self.cluster = cluster or Cluster()
        self.accuracy_model = accuracy_model or AccuracyModel.paper_default()
        self.streams = streams or RandomStreams(seed)
        self.stream_namespace = stream_namespace
        self.telemetry = telemetry
        if telemetry_src is not None:
            self.telemetry_src = telemetry_src
        elif stream_namespace:
            # "fleet/cluster3/" -> "cluster3": label events by the embedding.
            self.telemetry_src = stream_namespace.strip("/").split("/")[-1]
        else:
            self.telemetry_src = "dias"

        self.sim = simulator if simulator is not None else Simulator(telemetry=telemetry)
        self.buffers = PriorityBuffers()
        self.dropper = TaskDropper(self.streams.stream(stream_namespace + "dropper"))
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.energy_meter = EnergyMeter(self.cluster.power_model, start_time=self.sim.now)
        self.sprinter: Optional[Sprinter] = None
        if policy.sprints:
            self.sprinter = Sprinter(
                self.sim,
                policy.sprint,
                on_sprint_start=self._on_sprint_start,
                on_sprint_end=self._on_sprint_end,
                telemetry=telemetry,
                telemetry_src=self.telemetry_src,
            )

        self._running: Optional[JobExecution] = None
        self._running_plan: Optional[DropPlan] = None
        # Per-job bookkeeping across (possibly multiple, if evicted) attempts.
        self._job_state: Dict[int, Dict[str, float]] = {}
        self._completed = 0
        # Invoked after every completion; embedders (fleet) and the telemetry
        # sampler use it to react to end-of-workload without polling.
        self.on_job_complete: Optional[Callable[[], None]] = None
        self._total_evictions = 0
        # Backlog estimate maintained for dispatcher load queries.
        self._service_estimates: Dict[int, float] = {}
        self._queued_work = 0.0
        self._running_estimate = 0.0
        self._running_started_at = 0.0

    # ---------------------------------------------------------- load queries
    @property
    def queue_length(self) -> int:
        """Jobs currently held by this controller (buffered + in execution)."""
        return len(self.buffers) + (1 if self._running is not None else 0)

    @property
    def completed_jobs(self) -> int:
        """Jobs completed so far (drives sampler-termination predicates)."""
        return self._completed

    def telemetry_sample(self) -> Dict[str, float]:
        """Read-only state snapshot published by periodic telemetry samplers.

        Must not mutate anything (notably: it reads the energy meter via
        :meth:`~repro.engine.energy.EnergyMeter.snapshot`, never ``advance``)
        so that sampled runs produce bit-identical results to unsampled ones.
        """
        now = self.sim.now
        busy = self.metrics.busy_time + self.metrics.wasted_time
        if self._running is not None:
            busy += max(0.0, now - self._running_started_at)
        sample: Dict[str, float] = {
            "utilisation": (busy / now) if now > 0 else 0.0,
            "queue_depth": float(len(self.buffers)),
            "running": 1.0 if self._running is not None else 0.0,
            "work_left": self.work_left(),
            "completed_jobs": float(self._completed),
            "evictions": float(self._total_evictions),
        }
        for priority, depth in sorted(self.buffers.depths().items()):
            sample[f"depth_p{priority}"] = float(depth)
        sample.update(self.energy_meter.snapshot(now))
        return sample

    def work_left(self) -> float:
        """Estimated slot-seconds of service remaining (buffered + running).

        Buffered jobs count their wave-approximation service time under the
        policy's drop ratio; the running job counts its estimate minus the
        time it has already been executing.  Used by least-work-left routing.
        """
        remaining = self._queued_work
        if self._running is not None:
            elapsed = self.sim.now - self._running_started_at
            remaining += max(0.0, self._running_estimate - elapsed)
        return remaining

    def _estimated_service_time(self, job: Job) -> float:
        estimate = self._service_estimates.get(job.job_id)
        if estimate is None:
            estimate = job.ideal_service_time(
                self.cluster.slots, self.policy.map_drop_ratio(job.priority)
            )
            self._service_estimates[job.job_id] = estimate
        return estimate

    # -------------------------------------------------------------- running
    def submit(self, job: Job) -> None:
        """Hand ``job`` to this controller at the current simulated time.

        Entry point for external routers (the fleet dispatcher): the job joins
        its priority buffer immediately, exactly as a scheduled arrival would.
        """
        if job.job_id not in self._job_state:
            self._job_state[job.job_id] = {"wasted": 0.0, "evictions": 0}
        self._on_arrival(job)

    def schedule_trace(self) -> None:
        """Schedule every job of the trace as an arrival event."""
        for job in self.jobs:
            self._job_state[job.job_id] = {"wasted": 0.0, "evictions": 0}
            self.sim.schedule_at(
                job.arrival_time, self._make_arrival_callback(job), priority=0
            )

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run the whole trace to completion (or until the optional horizon)."""
        self.schedule_trace()
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                "run_start",
                self.sim.now,
                src=self.telemetry_src,
                run="dias",
                policy=self.policy.name,
            )
            if telemetry.sample_interval is not None:
                total = len(self.jobs)
                sampler = PeriodicSampler(
                    self.sim,
                    telemetry,
                    telemetry.sample_interval,
                    sources=[
                        (self.telemetry_src, self.telemetry_sample),
                        ("kernel", kernel_sample_source(self.sim)),
                    ],
                    should_continue=lambda: self._completed < total,
                )
                sampler.start()
                # Cancel the trailing tick at end-of-workload so sampling
                # never advances the clock past the unsampled run's end.
                self.on_job_complete = (
                    lambda: sampler.stop() if self._completed >= total else None
                )
        self.sim.run(until=until)
        result = self.finalize()
        if telemetry.enabled:
            telemetry.emit(
                "run_end",
                self.sim.now,
                src=self.telemetry_src,
                completed=self._completed,
                duration=self.sim.now,
            )
        return result

    def finalize(self) -> SimulationResult:
        """Close the books at the current simulated time and build the result."""
        self.energy_meter.advance(self.sim.now)
        self.metrics.set_observation_time(self.sim.now)
        account = self.energy_meter.account
        return SimulationResult(
            policy_name=self.policy.name,
            metrics=self.metrics,
            duration=self.sim.now,
            completed_jobs=self._completed,
            total_energy_joules=self.energy_meter.total_joules,
            sprinted_seconds=(
                self.sprinter.total_sprinted_seconds if self.sprinter is not None else 0.0
            ),
            evictions=self._total_evictions,
            idle_energy_joules=account.idle_joules,
            busy_energy_joules=account.busy_joules,
            sprint_energy_joules=account.sprint_joules,
        )

    # --------------------------------------------------------------- events
    def _make_arrival_callback(self, job: Job):
        def _callback(_sim: Simulator) -> None:
            self._on_arrival(job)

        return _callback

    def _on_arrival(self, job: Job) -> None:
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_admitted",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
            )
        self.buffers.push(job)
        self._queued_work += self._estimated_service_time(job)
        if self._running is None:
            self._dispatch_next()
            return
        if self.policy.preemptive and job.priority > self._running.job.priority:
            self._evict_running()
            self._dispatch_next()

    def _dispatch_next(self) -> None:
        job = self.buffers.pop_highest()
        if job is None:
            self._running = None
            self._running_plan = None
            self.energy_meter.set_mode("idle", self.sim.now)
            return
        self._queued_work = max(0.0, self._queued_work - self._estimated_service_time(job))
        if self.drop_ratio_provider is not None:
            decision = self.drop_ratio_provider(job, self.sim.now, self.metrics)
            map_drop = decision.map_drop_ratio
            reduce_drop = decision.reduce_drop_ratio
        else:
            map_drop = self.policy.map_drop_ratio(job.priority)
            reduce_drop = self.policy.reduce_drop_ratio(job.priority)
        plan = self.dropper.plan(job, map_drop, reduce_drop)
        if self.telemetry.enabled:
            # kept_map_indices maps stage index -> kept task indices.
            kept = sum(len(idx) for idx in plan.kept_map_indices.values())
            self.telemetry.emit(
                "drop_decision",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                map_drop_ratio=map_drop,
                reduce_drop_ratio=reduce_drop,
                kept_map_tasks=kept,
                dropped_map_tasks=job.num_map_tasks - kept,
            )
        phases = build_phases(
            job,
            map_drop_ratio=map_drop,
            reduce_drop_ratio=reduce_drop,
            kept_map_indices=plan.kept_map_indices,
            kept_reduce_indices=plan.kept_reduce_indices,
        )
        # Every dispatch starts at the base frequency; sprinting (if any) is
        # triggered later by the sprinter's timer.
        self.cluster.set_sprinting(False)
        self.energy_meter.set_mode("busy", self.sim.now)
        execution = JobExecution(
            self.sim, self.cluster, job, phases, on_complete=self._on_complete
        )
        self._running = execution
        self._running_plan = plan
        self._running_estimate = self._estimated_service_time(job)
        self._running_started_at = self.sim.now
        execution.start(speed=self.cluster.speed)
        if self.sprinter is not None:
            self.sprinter.on_dispatch(execution)

    def _evict_running(self) -> None:
        execution = self._running
        if execution is None:
            return
        if self.sprinter is not None:
            self.sprinter.on_job_end(execution)
        wasted = execution.evict()
        self.cluster.set_sprinting(False)
        job = execution.job
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_evicted",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                wasted=wasted,
            )
        state = self._job_state[job.job_id]
        state["wasted"] += wasted
        state["evictions"] += 1
        self._total_evictions += 1
        self.buffers.push_front(job)
        self._queued_work += self._estimated_service_time(job)
        self._running = None
        self._running_plan = None

    def _on_complete(self, execution: JobExecution) -> None:
        if self.sprinter is not None:
            self.sprinter.on_job_end(execution)
        self.cluster.set_sprinting(False)
        job = execution.job
        plan = self._running_plan
        state = self._job_state[job.job_id]
        effective_drop = plan.effective_drop_ratio if plan is not None else 0.0
        record = JobRecord(
            job_id=job.job_id,
            priority=job.priority,
            arrival_time=job.arrival_time,
            start_time=execution.start_time if execution.start_time is not None else job.arrival_time,
            completion_time=self.sim.now,
            execution_time=execution.elapsed,
            wasted_time=state["wasted"],
            evictions=int(state["evictions"]),
            drop_ratio=effective_drop,
            accuracy_loss=self.accuracy_model.error(min(effective_drop, 1.0)),
            sprinted_time=execution.sprinted_time,
            size_mb=job.size_mb,
            num_map_tasks=job.num_map_tasks,
            num_reduce_tasks=job.num_reduce_tasks,
        )
        self.metrics.record_job(record)
        self.metrics.record_busy_time(execution.elapsed)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_completed",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                response_time=record.response_time,
                execution_time=record.execution_time,
                drop_ratio=record.drop_ratio,
            )
        self._completed += 1
        if self.on_job_complete is not None:
            self.on_job_complete()
        self._running = None
        self._running_plan = None
        self._dispatch_next()

    # ------------------------------------------------------------- sprinting
    def _on_sprint_start(self, execution: JobExecution) -> None:
        self.cluster.set_sprinting(True)
        if execution.running:
            execution.set_speed(self.cluster.speed)
        self.energy_meter.set_mode("sprint", self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "dvfs_transition",
                self.sim.now,
                src=self.telemetry_src,
                speed=self.cluster.speed,
                mode="sprint",
            )

    def _on_sprint_end(self, execution: JobExecution) -> None:
        self.cluster.set_sprinting(False)
        if execution.running:
            execution.set_speed(self.cluster.speed)
            self.energy_meter.set_mode("busy", self.sim.now)
        else:
            mode = "busy" if self._running is not None else "idle"
            self.energy_meter.set_mode(mode, self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "dvfs_transition",
                self.sim.now,
                src=self.telemetry_src,
                speed=self.cluster.speed,
                mode="nominal",
            )


def run_policy(
    policy: SchedulingPolicy,
    jobs: Sequence[Job],
    cluster: Optional[Cluster] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    seed: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`DiASSimulation` and run it."""
    simulation = DiASSimulation(
        policy=policy,
        jobs=jobs,
        cluster=cluster,
        accuracy_model=accuracy_model,
        seed=seed,
    )
    return simulation.run()
