"""The DiAS controller (§3.2, §3.3) and the end-to-end simulation driver.

The controller reproduces the prototype's state machine:

* arriving jobs are placed in the buffer of their priority class;
* whenever the processing engine is free, the head of the highest non-empty
  buffer is dispatched with its class's approximation level (the dropper
  selects the surviving tasks, mirroring the ``findMissingPartitions``
  modification);
* under a **preemptive** policy a higher-priority arrival evicts the job in
  execution — the work done so far is wasted and the job returns to the head
  of its buffer to be re-run from scratch (the prototype's SIGKILL path);
* under DiAS (non-preemptive), the job in execution always finishes; if
  sprinting is enabled, the sprinter boosts the CPU frequency after the
  class's timeout, subject to the sprint budget;
* the energy meter charges every interval at the idle/busy/sprint power.

:class:`DiASSimulation` wires these pieces to the engine substrate and runs a
whole job trace, returning a :class:`SimulationResult` with the metrics the
paper reports (mean/tail latency per class, queueing/execution decomposition,
resource waste, energy, accuracy loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.buffers import PriorityBuffers
from repro.core.dropper import DropPlan, TaskDropper
from repro.core.policies import SchedulingPolicy
from repro.core.sprinter import Sprinter
from repro.engine.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec, parse_fault_spec
from repro.engine.energy import EnergyMeter
from repro.engine.execution import JobExecution, build_phases
from repro.engine.job import Job
from repro.models.accuracy import AccuracyModel
from repro.simulation.des import Simulator
from repro.simulation.metrics import ClassMetrics, JobRecord, MetricsCollector
from repro.simulation.random_streams import RandomStreams
from repro.telemetry import NULL_HUB, PeriodicSampler, TelemetryHub, kernel_sample_source


def _dropped_task_seconds(job: Job, plan: DropPlan) -> float:
    """Slot-seconds of task work the drop plan sheds (for span attribution).

    Stages absent from the plan's kept-index maps keep all their tasks and
    contribute nothing.
    """
    dropped = 0.0
    for stage in job.stages:
        kept_map = plan.kept_map_indices.get(stage.index)
        if kept_map is not None:
            dropped += sum(stage.map_task_times) - sum(
                stage.map_task_times[i] for i in kept_map
            )
        kept_reduce = plan.kept_reduce_indices.get(stage.index)
        if kept_reduce is not None:
            dropped += sum(stage.reduce_task_times) - sum(
                stage.reduce_task_times[i] for i in kept_reduce
            )
    return dropped


@dataclass(frozen=True)
class DropRatioDecision:
    """Per-dispatch drop ratios returned by an online drop-ratio provider."""

    map_drop_ratio: float
    reduce_drop_ratio: float = 0.0

    def __post_init__(self) -> None:
        for value in (self.map_drop_ratio, self.reduce_drop_ratio):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"drop ratios must be in [0, 1), got {value!r}")


@dataclass
class SimulationResult:
    """Everything measured during one simulated run of one policy."""

    policy_name: str
    metrics: MetricsCollector
    duration: float
    completed_jobs: int
    total_energy_joules: float
    sprinted_seconds: float
    evictions: int
    idle_energy_joules: float = 0.0
    busy_energy_joules: float = 0.0
    sprint_energy_joules: float = 0.0
    #: Fault-injection counters (empty when the run injected no faults).
    fault_counts: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------ accessors
    @property
    def total_energy_kilojoules(self) -> float:
        return self.total_energy_joules / 1000.0

    @property
    def active_energy_joules(self) -> float:
        """Energy spent while actually processing (busy + sprint, no idle)."""
        return self.busy_energy_joules + self.sprint_energy_joules

    @property
    def active_energy_kilojoules(self) -> float:
        return self.active_energy_joules / 1000.0

    def priorities(self) -> List[int]:
        return self.metrics.priorities()

    def class_metrics(self, priority: int) -> ClassMetrics:
        return self.metrics.class_metrics(priority)

    def mean_response_time(self, priority: Optional[int] = None) -> float:
        return self.metrics.mean_response_time(priority)

    def tail_response_time(self, priority: Optional[int] = None, q: float = 95.0) -> float:
        return self.metrics.tail_response_time(priority, q)

    def mean_queueing_time(self, priority: int) -> float:
        return self.class_metrics(priority).queueing_time.mean

    def mean_execution_time(self, priority: int) -> float:
        return self.class_metrics(priority).execution_time.mean

    def mean_accuracy_loss(self, priority: int) -> float:
        return self.class_metrics(priority).accuracy_loss_mean

    @property
    def resource_waste(self) -> float:
        """Fraction of machine time spent re-processing evicted jobs."""
        return self.metrics.resource_waste_fraction()

    @property
    def utilisation(self) -> float:
        return self.metrics.utilisation()

    def relative_difference(
        self, baseline: "SimulationResult", priority: int, metric: str = "mean"
    ) -> float:
        """Relative latency difference vs ``baseline`` in percent (Fig. 7–11).

        Negative values mean this policy is *faster* than the baseline.
        """
        if metric == "mean":
            ours = self.mean_response_time(priority)
            theirs = baseline.mean_response_time(priority)
        elif metric == "tail":
            ours = self.tail_response_time(priority)
            theirs = baseline.tail_response_time(priority)
        else:
            raise ValueError("metric must be 'mean' or 'tail'")
        if theirs == 0:
            return float("nan")
        return 100.0 * (ours - theirs) / theirs


class DiASSimulation:
    """Simulates one scheduling policy over a fixed job trace.

    The controller can run standalone (it then owns its own DES kernel and
    drives the whole trace via :meth:`run`) or be *embedded*, e.g. as one
    cluster of a :class:`~repro.fleet.simulation.FleetSimulation`: pass an
    external ``simulator`` plus a ``stream_namespace`` so several controllers
    can share one kernel and one root seed while drawing independent random
    streams, feed jobs with :meth:`submit`, and collect the result with
    :meth:`finalize` once the shared kernel has drained.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        jobs: Sequence[Job] = (),
        cluster: Optional[Cluster] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        streams: Optional[RandomStreams] = None,
        seed: int = 0,
        drop_ratio_provider: Optional[
            Callable[[Job, float, MetricsCollector], "DropRatioDecision"]
        ] = None,
        simulator: Optional[Simulator] = None,
        stream_namespace: str = "",
        telemetry: TelemetryHub = NULL_HUB,
        metrics: Optional[MetricsCollector] = None,
        telemetry_src: Optional[str] = None,
        faults: Union[str, FaultSpec, None] = None,
    ) -> None:
        if not jobs and simulator is None:
            raise ValueError("the job trace must not be empty")
        self.policy = policy
        self.drop_ratio_provider = drop_ratio_provider
        self.jobs = sorted(jobs, key=lambda j: j.arrival_time)
        self.cluster = cluster or Cluster()
        self.accuracy_model = accuracy_model or AccuracyModel.paper_default()
        self.streams = streams or RandomStreams(seed)
        self.stream_namespace = stream_namespace
        self.telemetry = telemetry
        if telemetry_src is not None:
            self.telemetry_src = telemetry_src
        elif stream_namespace:
            # "fleet/cluster3/" -> "cluster3": label events by the embedding.
            self.telemetry_src = stream_namespace.strip("/").split("/")[-1]
        else:
            self.telemetry_src = "dias"

        self.sim = simulator if simulator is not None else Simulator(telemetry=telemetry)
        self.buffers = PriorityBuffers()
        self.dropper = TaskDropper(self.streams.stream(stream_namespace + "dropper"))
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.energy_meter = EnergyMeter(self.cluster.power_model, start_time=self.sim.now)
        self.sprinter: Optional[Sprinter] = None
        if policy.sprints:
            self.sprinter = Sprinter(
                self.sim,
                policy.sprint,
                on_sprint_start=self._on_sprint_start,
                on_sprint_end=self._on_sprint_end,
                telemetry=telemetry,
                telemetry_src=self.telemetry_src,
                on_sprint_denied=self._on_sprint_denied,
            )

        #: Optional fault injector; ``None`` keeps every hot path on the
        #: historical branch (fault injection is zero-cost when disabled).
        self.fault_spec = parse_fault_spec(faults)
        self.faults: Optional[FaultInjector] = None
        if self.fault_spec is not None:
            self.faults = FaultInjector(
                self.fault_spec,
                sim=self.sim,
                cluster=self.cluster,
                streams=self.streams,
                namespace=self.stream_namespace,
                telemetry=telemetry,
                telemetry_src=self.telemetry_src,
                on_crash=self._on_worker_crash,
                on_repair=self._on_worker_repair,
            )
        #: Set by checkpoint restore: arrivals at or before this simulated
        #: time are already accounted for and must not be re-scheduled.
        self._resume_time: Optional[float] = None

        self._running: Optional[JobExecution] = None
        self._running_plan: Optional[DropPlan] = None
        # Per-job bookkeeping across (possibly multiple, if evicted) attempts.
        self._job_state: Dict[int, Dict[str, float]] = {}
        # Open-span bookkeeping (job/queue/attempt/sprint ids and start
        # times) per job while span tracing is on; empty otherwise.
        self._trace: Dict[int, Dict[str, Any]] = {}
        self._completed = 0
        # Invoked after every completion; embedders (fleet) and the telemetry
        # sampler use it to react to end-of-workload without polling.
        self.on_job_complete: Optional[Callable[[], None]] = None
        # Invoked with every finished JobRecord; embedders tee records into a
        # shared (streaming) collector without touching per-cluster metrics.
        self.on_job_record: Optional[Callable[[JobRecord], None]] = None
        self._total_evictions = 0
        # Backlog estimate maintained for dispatcher load queries.
        self._service_estimates: Dict[int, float] = {}
        self._queued_work = 0.0
        self._running_estimate = 0.0
        self._running_started_at = 0.0
        # priority -> interned "depth_p{priority}" sample field name.
        self._depth_keys: Dict[int, str] = {}

    # ---------------------------------------------------------- load queries
    @property
    def queue_length(self) -> int:
        """Jobs currently held by this controller (buffered + in execution)."""
        return len(self.buffers) + (1 if self._running is not None else 0)

    @property
    def completed_jobs(self) -> int:
        """Jobs completed so far (drives sampler-termination predicates)."""
        return self._completed

    def telemetry_sample(self) -> Dict[str, float]:
        """Read-only state snapshot published by periodic telemetry samplers.

        Must not mutate anything (notably: it reads the energy meter via
        :meth:`~repro.engine.energy.EnergyMeter.snapshot`, never ``advance``)
        so that sampled runs produce bit-identical results to unsampled ones.
        """
        # This runs once per sampler tick on every sampled run, so it avoids
        # avoidable Python frames: one depth pass doubles as the total queue
        # depth, :meth:`work_left` is inlined, field names are interned once
        # per priority, and integer counters stay integers (the schema admits
        # any number).
        now = self.sim.now
        running = self._running
        busy = self.metrics.busy_time + self.metrics.wasted_time
        work_left = self._queued_work
        if running is not None:
            busy += max(0.0, now - self._running_started_at)
            work_left += max(
                0.0, self._running_estimate - (now - self._running_started_at)
            )
        sample: Dict[str, float] = {
            "utilisation": (busy / now) if now > 0 else 0.0,
            "queue_depth": 0,
            "running": 1.0 if running is not None else 0.0,
            "work_left": work_left,
            "completed_jobs": self._completed,
            "evictions": self._total_evictions,
        }
        depth_keys = self._depth_keys
        total_depth = 0
        for priority, depth in self.buffers.depth_rows():
            total_depth += depth
            key = depth_keys.get(priority)
            if key is None:
                key = depth_keys[priority] = f"depth_p{priority}"
            sample[key] = depth
        sample["queue_depth"] = total_depth
        meter = self.energy_meter
        sample["energy_joules"] = meter.projected_joules(now)
        sample["power_mode"] = meter._mode
        return sample

    def work_left(self) -> float:
        """Estimated slot-seconds of service remaining (buffered + running).

        Buffered jobs count their wave-approximation service time under the
        policy's drop ratio; the running job counts its estimate minus the
        time it has already been executing.  Used by least-work-left routing.
        """
        remaining = self._queued_work
        if self._running is not None:
            elapsed = self.sim.now - self._running_started_at
            remaining += max(0.0, self._running_estimate - elapsed)
        return remaining

    def _estimated_service_time(self, job: Job) -> float:
        estimate = self._service_estimates.get(job.job_id)
        if estimate is None:
            estimate = job.ideal_service_time(
                self.cluster.slots, self.policy.map_drop_ratio(job.priority)
            )
            self._service_estimates[job.job_id] = estimate
        return estimate

    # -------------------------------------------------------------- running
    def submit(self, job: Job) -> None:
        """Hand ``job`` to this controller at the current simulated time.

        Entry point for external routers (the fleet dispatcher): the job joins
        its priority buffer immediately, exactly as a scheduled arrival would.
        """
        if job.job_id not in self._job_state:
            self._job_state[job.job_id] = {"wasted": 0.0, "evictions": 0}
        self._on_arrival(job)

    def schedule_trace(self) -> None:
        """Schedule every job of the trace as an arrival event.

        After a checkpoint restore only arrivals strictly later than the
        snapshot time are scheduled — earlier jobs already completed and live
        in the restored metrics.
        """
        cutoff = self._resume_time
        for job in self.jobs:
            if cutoff is not None and job.arrival_time <= cutoff:
                continue
            self._job_state[job.job_id] = {"wasted": 0.0, "evictions": 0}
            self.sim.schedule_at(
                job.arrival_time, self._make_arrival_callback(job), priority=0
            )

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run the whole trace to completion (or until the optional horizon)."""
        self.schedule_trace()
        if self.faults is not None and not self.faults.started:
            self.faults.start()
        if (
            self.faults is not None
            and self.jobs
            and self._completed >= len(self.jobs)
        ):
            # Resumed from a snapshot taken after the workload drained: no
            # completion event will fire the stop, so cancel the crash/repair
            # renewal process here or the heap never empties.
            self.faults.stop()
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                "run_start",
                self.sim.now,
                src=self.telemetry_src,
                run="dias",
                policy=self.policy.name,
            )
            if telemetry.sample_interval is not None:
                total = len(self.jobs)
                sampler = PeriodicSampler(
                    self.sim,
                    telemetry,
                    telemetry.sample_interval,
                    sources=[
                        (self.telemetry_src, self.telemetry_sample),
                        ("kernel", kernel_sample_source(self.sim)),
                    ],
                    should_continue=lambda: self._completed < total,
                )
                sampler.start()
                # Cancel the trailing tick at end-of-workload so sampling
                # never advances the clock past the unsampled run's end.
                self.on_job_complete = (
                    lambda: sampler.stop() if self._completed >= total else None
                )
        self.sim.run(until=until)
        result = self.finalize()
        if telemetry.enabled:
            telemetry.emit(
                "run_end",
                self.sim.now,
                src=self.telemetry_src,
                completed=self._completed,
                duration=self.sim.now,
            )
        return result

    def finalize(self) -> SimulationResult:
        """Close the books at the current simulated time and build the result."""
        self.energy_meter.advance(self.sim.now)
        self.metrics.set_observation_time(self.sim.now)
        account = self.energy_meter.account
        return SimulationResult(
            policy_name=self.policy.name,
            metrics=self.metrics,
            duration=self.sim.now,
            completed_jobs=self._completed,
            total_energy_joules=self.energy_meter.total_joules,
            sprinted_seconds=(
                self.sprinter.total_sprinted_seconds if self.sprinter is not None else 0.0
            ),
            evictions=self._total_evictions,
            idle_energy_joules=account.idle_joules,
            busy_energy_joules=account.busy_joules,
            sprint_energy_joules=account.sprint_joules,
            fault_counts=dict(self.faults.counters) if self.faults is not None else {},
        )

    # --------------------------------------------------------------- events
    def _make_arrival_callback(self, job: Job):
        def _callback(_sim: Simulator) -> None:
            self._on_arrival(job)

        return _callback

    def _on_arrival(self, job: Job) -> None:
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_admitted",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
            )
        if self.telemetry.tracing:
            # Open the job's root span and its first queue wait; both close
            # later (spans are emitted at close time, ids are stable now).
            self._trace[job.job_id] = {
                "job": self.telemetry.new_span_id(),
                "job_start": self.sim.now,
                "attempt": 0,
                "queue_id": self.telemetry.new_span_id(),
                "queue_start": self.sim.now,
            }
        self.buffers.push(job)
        self._queued_work += self._estimated_service_time(job)
        if self._running is None:
            self._dispatch_next()
            return
        if self.policy.preemptive and job.priority > self._running.job.priority:
            self._evict_running()
            self._dispatch_next()

    def _dispatch_next(self) -> None:
        job = self.buffers.pop_highest()
        if job is None:
            self._running = None
            self._running_plan = None
            self.energy_meter.set_mode("idle", self.sim.now)
            return
        self._queued_work = max(0.0, self._queued_work - self._estimated_service_time(job))
        if self.drop_ratio_provider is not None:
            decision = self.drop_ratio_provider(job, self.sim.now, self.metrics)
            map_drop = decision.map_drop_ratio
            reduce_drop = decision.reduce_drop_ratio
        else:
            map_drop = self.policy.map_drop_ratio(job.priority)
            reduce_drop = self.policy.reduce_drop_ratio(job.priority)
        plan = self.dropper.plan(job, map_drop, reduce_drop)
        if self.telemetry.enabled:
            # kept_map_indices maps stage index -> kept task indices.
            kept = sum(len(idx) for idx in plan.kept_map_indices.values())
            self.telemetry.emit(
                "drop_decision",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                map_drop_ratio=map_drop,
                reduce_drop_ratio=reduce_drop,
                kept_map_tasks=kept,
                dropped_map_tasks=job.num_map_tasks - kept,
            )
        phases = build_phases(
            job,
            map_drop_ratio=map_drop,
            reduce_drop_ratio=reduce_drop,
            kept_map_indices=plan.kept_map_indices,
            kept_reduce_indices=plan.kept_reduce_indices,
        )
        trace_parent = 0
        if self.telemetry.tracing:
            trace_parent = self._trace_dispatch(job, plan)
        # Every dispatch starts at the base frequency; sprinting (if any) is
        # triggered later by the sprinter's timer.
        self.cluster.set_sprinting(False)
        self.energy_meter.set_mode("busy", self.sim.now)
        execution = JobExecution(
            self.sim,
            self.cluster,
            job,
            phases,
            on_complete=self._on_complete,
            telemetry=self.telemetry,
            telemetry_src=self.telemetry_src,
            trace_parent=trace_parent,
            faults=self.faults,
            on_give_up=self._on_task_exhausted if self.faults is not None else None,
        )
        self._running = execution
        self._running_plan = plan
        self._running_estimate = self._estimated_service_time(job)
        self._running_started_at = self.sim.now
        execution.start(speed=self.cluster.speed)
        if self.sprinter is not None:
            self.sprinter.on_dispatch(execution)

    # ------------------------------------------------------------ span probes
    def _trace_dispatch(self, job: Job, plan: DropPlan) -> int:
        """Close the queue span, open the attempt span, annotate the drop.

        Returns the attempt span id, which the :class:`JobExecution` uses as
        the parent of its wave/task spans.  Only called while tracing.
        """
        telemetry = self.telemetry
        now = self.sim.now
        state = self._trace[job.job_id]
        telemetry.emit(
            "span",
            now,
            src=self.telemetry_src,
            span_id=state.pop("queue_id"),
            parent_id=state["job"],
            name="queue_wait",
            cat="queue",
            start=state.pop("queue_start"),
            job_id=job.job_id,
            priority=job.priority,
        )
        state["attempt"] += 1
        attempt_id = telemetry.new_span_id()
        state["attempt_id"] = attempt_id
        state["attempt_start"] = now
        dropped_seconds = _dropped_task_seconds(job, plan)
        if dropped_seconds > 0.0:
            kept = sum(len(idx) for idx in plan.kept_map_indices.values()) + sum(
                len(idx) for idx in plan.kept_reduce_indices.values()
            )
            telemetry.emit(
                "span",
                now,
                src=self.telemetry_src,
                span_id=telemetry.new_span_id(),
                parent_id=attempt_id,
                name="drop",
                cat="drop",
                start=now,
                job_id=job.job_id,
                dropped_tasks=job.num_map_tasks + job.num_reduce_tasks - kept,
                salvaged=dropped_seconds / self.cluster.slots,
            )
        return attempt_id

    def _trace_attempt_end(self, execution: JobExecution, outcome: str) -> None:
        """Close the current attempt span; only called while tracing."""
        job = execution.job
        state = self._trace[job.job_id]
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=state.pop("attempt_id"),
            parent_id=state["job"],
            name="attempt",
            cat="attempt",
            start=state.pop("attempt_start"),
            job_id=job.job_id,
            attempt=state["attempt"],
            outcome=outcome,
            sprinted=execution.sprinted_time,
        )

    def _evict_running(self) -> None:
        execution = self._running
        if execution is None:
            return
        if self.sprinter is not None:
            self.sprinter.on_job_end(execution)
        wasted = execution.evict()
        self.cluster.set_sprinting(False)
        job = execution.job
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_evicted",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                wasted=wasted,
            )
        if self.telemetry.tracing:
            now = self.sim.now
            trace_state = self._trace[job.job_id]
            self.telemetry.emit(
                "span",
                now,
                src=self.telemetry_src,
                span_id=self.telemetry.new_span_id(),
                parent_id=trace_state["attempt_id"],
                name="evict",
                cat="evict",
                start=now,
                job_id=job.job_id,
                wasted=wasted,
            )
            self._trace_attempt_end(execution, "evicted")
            # The job re-queues at this same instant: open the next wait.
            trace_state["queue_id"] = self.telemetry.new_span_id()
            trace_state["queue_start"] = now
        # setdefault: hand-built traces may reuse job ids, and a duplicate's
        # bookkeeping can already have been popped by the first completion.
        state = self._job_state.setdefault(job.job_id, {"wasted": 0.0, "evictions": 0})
        state["wasted"] += wasted
        state["evictions"] += 1
        self._total_evictions += 1
        self.buffers.push_front(job)
        self._queued_work += self._estimated_service_time(job)
        self._running = None
        self._running_plan = None

    def _on_complete(self, execution: JobExecution) -> None:
        if self.sprinter is not None:
            self.sprinter.on_job_end(execution)
        self.cluster.set_sprinting(False)
        job = execution.job
        plan = self._running_plan
        # Pop per-job bookkeeping so long streaming replays stay bounded; the
        # default covers duplicated job ids in hand-built traces, where the
        # first completion already popped the shared entry.
        state = self._job_state.pop(job.job_id, None)
        if state is None:
            state = {"wasted": 0.0, "evictions": 0}
        self._service_estimates.pop(job.job_id, None)
        effective_drop = plan.effective_drop_ratio if plan is not None else 0.0
        record = JobRecord(
            job_id=job.job_id,
            priority=job.priority,
            arrival_time=job.arrival_time,
            start_time=execution.start_time if execution.start_time is not None else job.arrival_time,
            completion_time=self.sim.now,
            execution_time=execution.elapsed,
            wasted_time=state["wasted"],
            evictions=int(state["evictions"]),
            drop_ratio=effective_drop,
            accuracy_loss=self.accuracy_model.error(min(effective_drop, 1.0)),
            sprinted_time=execution.sprinted_time,
            size_mb=job.size_mb,
            num_map_tasks=job.num_map_tasks,
            num_reduce_tasks=job.num_reduce_tasks,
        )
        self.metrics.record_job(record)
        self.metrics.record_busy_time(execution.elapsed)
        if self.on_job_record is not None:
            self.on_job_record(record)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_completed",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                response_time=record.response_time,
                execution_time=record.execution_time,
                drop_ratio=record.drop_ratio,
            )
        if self.telemetry.tracing:
            self._trace_attempt_end(execution, "completed")
            trace_state = self._trace.pop(job.job_id)
            self.telemetry.emit(
                "span",
                self.sim.now,
                src=self.telemetry_src,
                span_id=trace_state["job"],
                parent_id=0,
                name="job",
                cat="job",
                start=trace_state["job_start"],
                job_id=job.job_id,
                priority=job.priority,
            )
        self._completed += 1
        if (
            self.faults is not None
            and self.jobs
            and self._completed >= len(self.jobs)
        ):
            # Standalone run drained: cancel the open-ended crash/repair
            # renewal process so the event heap can empty.  Fleet-embedded
            # controllers have an empty job list; the fleet stops their
            # injectors from its own completion hook.
            self.faults.stop()
        if self.on_job_complete is not None:
            self.on_job_complete()
        self._running = None
        self._running_plan = None
        self._dispatch_next()

    # ---------------------------------------------------------------- faults
    def _fault_restart(self, reason: str) -> None:
        """Abort the running attempt and re-queue the job (fault recovery).

        Reuses the eviction path so resource-waste accounting and the span
        tree (evict annotation, attempt outcome, fresh queue span) stay
        consistent with preemptive evictions — the latency decomposition's
        ``re_execution`` component keeps summing to the response time.
        """
        execution = self._running
        if execution is None:
            return
        job = execution.job
        if self.telemetry.tracing:
            # Annotate before eviction so the trace records *why* the
            # attempt was aborted, not just that it was evicted.
            self.telemetry.emit(
                "span",
                self.sim.now,
                src=self.telemetry_src,
                span_id=self.telemetry.new_span_id(),
                parent_id=execution.trace_parent,
                name=reason,
                cat="fault",
                start=self.sim.now,
                job_id=job.job_id,
                slot=-1,
            )
        self._evict_running()
        self.faults.note_job_restart()
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.job_restart",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                reason=reason,
            )

    def _on_task_exhausted(self, execution: JobExecution) -> None:
        """A task burned through its transient-failure retries: re-run the job."""
        self._fault_restart("retries_exhausted")
        self._dispatch_next()

    def _on_worker_crash(self, worker: int) -> None:
        execution = self._running
        if execution is None:
            return
        if self.faults.crash_recovery == "restart":
            self._fault_restart("crash")
            self._dispatch_next()
            return
        execution.on_worker_crash(worker)

    def _on_worker_repair(self, worker: int) -> None:
        if self._running is not None:
            self._running.on_worker_repair(worker)

    # ------------------------------------------------------------- sprinting
    def _on_sprint_start(self, execution: JobExecution) -> None:
        self.cluster.set_sprinting(True)
        if execution.running:
            execution.set_speed(self.cluster.speed)
        self.energy_meter.set_mode("sprint", self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "dvfs_transition",
                self.sim.now,
                src=self.telemetry_src,
                speed=self.cluster.speed,
                mode="sprint",
            )
        if self.telemetry.tracing:
            state = self._trace.get(execution.job.job_id)
            if state is not None:
                state["sprint_id"] = self.telemetry.new_span_id()
                state["sprint_start"] = self.sim.now

    def _on_sprint_end(self, execution: JobExecution) -> None:
        self.cluster.set_sprinting(False)
        if execution.running:
            execution.set_speed(self.cluster.speed)
            self.energy_meter.set_mode("busy", self.sim.now)
        else:
            mode = "busy" if self._running is not None else "idle"
            self.energy_meter.set_mode(mode, self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "dvfs_transition",
                self.sim.now,
                src=self.telemetry_src,
                speed=self.cluster.speed,
                mode="nominal",
            )
        if self.telemetry.tracing:
            state = self._trace.get(execution.job.job_id)
            if state is not None and "sprint_start" in state:
                # The DVFS throttle interval, a child of the attempt it
                # accelerated (the sprinter always stops before the attempt
                # closes, so the interval nests inside it).
                self.telemetry.emit(
                    "span",
                    self.sim.now,
                    src=self.telemetry_src,
                    span_id=state.pop("sprint_id"),
                    parent_id=state.get("attempt_id", state["job"]),
                    name="sprint",
                    cat="sprint",
                    start=state.pop("sprint_start"),
                    job_id=execution.job.job_id,
                    speed=self.cluster.dvfs.speedup(self.cluster.dvfs.sprint),
                )

    def _on_sprint_denied(self, execution: JobExecution) -> None:
        if self.telemetry.tracing:
            state = self._trace.get(execution.job.job_id)
            if state is not None and "attempt_id" in state:
                now = self.sim.now
                self.telemetry.emit(
                    "span",
                    now,
                    src=self.telemetry_src,
                    span_id=self.telemetry.new_span_id(),
                    parent_id=state["attempt_id"],
                    name="sprint_denied",
                    cat="denied",
                    start=now,
                    job_id=execution.job.job_id,
                )


def run_policy(
    policy: SchedulingPolicy,
    jobs: Sequence[Job],
    cluster: Optional[Cluster] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    seed: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`DiASSimulation` and run it."""
    simulation = DiASSimulation(
        policy=policy,
        jobs=jobs,
        cluster=cluster,
        accuracy_model=accuracy_model,
        seed=seed,
    )
    return simulation.run()
