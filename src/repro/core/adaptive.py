"""Online, workload-adaptive deflation (the paper's §5.3 extension).

The published DiAS prototype uses *static* thresholds: the deflator searches
the drop-ratio / frequency space once for a given workload set, and the paper
notes that "such searching procedure needs to be evoked upon every workload
change".  This module implements that extension: an
:class:`AdaptiveDeflationController` that re-evaluates the drop ratios online
from the latencies observed in a sliding window.

The controller plugs into :class:`repro.core.dias.DiASSimulation` through its
``drop_ratio_provider`` hook, so the same simulation machinery runs either the
paper's static policies or the adaptive extension.

Control law (simple and conservative by design):

* every ``reevaluation_interval`` seconds of simulated time, look at the last
  ``window`` completed jobs of the monitored (high-priority) class;
* if their mean response time exceeds ``latency_target``, move each adaptable
  class one step *up* its candidate drop-ratio ladder (more approximation →
  shorter low-priority jobs → less waiting for everyone);
* if the observed latency is below ``release_fraction × latency_target``,
  move one step *down* (recover accuracy when the system has headroom);
* never exceed the per-class accuracy-tolerance ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.dias import DropRatioDecision
from repro.engine.job import Job
from repro.engine.profiles import JobClassProfile
from repro.models.accuracy import AccuracyModel
from repro.simulation.metrics import MetricsCollector


@dataclass(frozen=True)
class AdaptationEvent:
    """One recorded adaptation step (for inspection and tests)."""

    time: float
    observed_latency: float
    direction: int
    drop_ratios: Dict[int, float]


class AdaptiveDeflationController:
    """Adjusts per-class drop ratios online from observed latencies.

    Parameters
    ----------
    profiles:
        Per-priority job profiles (used for the accuracy tolerances).
    latency_target:
        Mean response-time target (seconds) for the monitored class.
    monitored_priority:
        The class whose latency drives adaptation (default: highest priority).
    candidates:
        The ladder of drop ratios each adaptable class may climb.
    window:
        Number of most recent monitored-class completions considered.
    reevaluation_interval:
        Minimum simulated time between adaptation steps.
    release_fraction:
        Fraction of the target below which the controller steps back down.
    accuracy_model:
        Curve used to enforce each class's accuracy tolerance.
    """

    def __init__(
        self,
        profiles: Mapping[int, JobClassProfile],
        latency_target: float,
        monitored_priority: Optional[int] = None,
        candidates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
        window: int = 10,
        reevaluation_interval: float = 60.0,
        release_fraction: float = 0.5,
        accuracy_model: Optional[AccuracyModel] = None,
    ) -> None:
        if latency_target <= 0:
            raise ValueError("latency_target must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if reevaluation_interval <= 0:
            raise ValueError("reevaluation_interval must be positive")
        if not 0.0 < release_fraction <= 1.0:
            raise ValueError("release_fraction must be in (0, 1]")
        if not candidates or sorted(candidates) != list(candidates):
            raise ValueError("candidates must be a non-empty increasing sequence")
        self.profiles = dict(profiles)
        self.latency_target = float(latency_target)
        self.monitored_priority = (
            monitored_priority if monitored_priority is not None else max(profiles)
        )
        if self.monitored_priority not in self.profiles:
            raise ValueError("monitored_priority must be one of the profile priorities")
        self.candidates = [float(c) for c in candidates]
        self.window = int(window)
        self.reevaluation_interval = float(reevaluation_interval)
        self.release_fraction = float(release_fraction)
        self.accuracy_model = accuracy_model or AccuracyModel.paper_default()

        # Per-class ceiling from the accuracy tolerance, and current ladder index.
        self._ceilings = {
            priority: self.accuracy_model.max_drop_for_error(profile.max_accuracy_loss)
            for priority, profile in self.profiles.items()
        }
        self._levels: Dict[int, int] = {priority: 0 for priority in self.profiles}
        self._last_evaluation = float("-inf")
        self.events: List[AdaptationEvent] = []

    # ------------------------------------------------------------- accessors
    def current_drop_ratio(self, priority: int) -> float:
        """Drop ratio currently assigned to ``priority``."""
        level = self._levels.get(priority, 0)
        theta = self.candidates[level]
        return min(theta, self._ceilings.get(priority, 0.0))

    def current_drop_ratios(self) -> Dict[int, float]:
        return {priority: self.current_drop_ratio(priority) for priority in self.profiles}

    @property
    def adaptations(self) -> int:
        return len(self.events)

    # ------------------------------------------------------- provider protocol
    def __call__(self, job: Job, now: float, metrics: MetricsCollector) -> DropRatioDecision:
        """The ``drop_ratio_provider`` hook used by :class:`DiASSimulation`."""
        self._maybe_adapt(now, metrics)
        return DropRatioDecision(map_drop_ratio=self.current_drop_ratio(job.priority))

    # -------------------------------------------------------------- internals
    def _observed_latency(self, metrics: MetricsCollector) -> Optional[float]:
        records = metrics.records_for_priority(self.monitored_priority)
        if not records:
            return None
        recent = records[-self.window :]
        return sum(r.response_time for r in recent) / len(recent)

    def _maybe_adapt(self, now: float, metrics: MetricsCollector) -> None:
        if now - self._last_evaluation < self.reevaluation_interval:
            return
        observed = self._observed_latency(metrics)
        if observed is None:
            return
        self._last_evaluation = now
        direction = 0
        if observed > self.latency_target:
            direction = 1
        elif observed < self.release_fraction * self.latency_target:
            direction = -1
        if direction == 0:
            return
        changed = False
        for priority in self.profiles:
            if self._ceilings.get(priority, 0.0) <= 0.0:
                continue  # class with zero accuracy tolerance never adapts
            old_level = self._levels[priority]
            new_level = min(max(old_level + direction, 0), len(self.candidates) - 1)
            # Do not climb past the class's accuracy ceiling.
            while new_level > 0 and self.candidates[new_level] > self._ceilings[priority] + 1e-12:
                new_level -= 1
            if new_level != old_level:
                self._levels[priority] = new_level
                changed = True
        if changed:
            self.events.append(
                AdaptationEvent(
                    time=now,
                    observed_latency=observed,
                    direction=direction,
                    drop_ratios=self.current_drop_ratios(),
                )
            )
