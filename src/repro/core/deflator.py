"""The model-guided task deflator (§3.2, §4.3, §5.2.1).

The deflator is the decision-making component of DiAS.  Given the workload
profile of every priority class, the cluster size and the per-class accuracy
tolerances, it

1. inverts the accuracy-loss curve to find the largest admissible drop ratio
   per class (Fig. 6 usage),
2. uses the stochastic response-time models of Section 4 to predict the mean
   response time of every class for each candidate drop-ratio assignment
   (Fig. 5 usage), and
3. picks the assignment that satisfies the latency constraints with the least
   accuracy loss ("DA(0,20) is already within the 100 ms limit…" §5.2.1).

It also chooses sprint timeouts from the sprinting budget via
:class:`~repro.models.sprinting.SprintingRateModel`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.profiles import JobClassProfile
from repro.models.accuracy import AccuracyModel
from repro.models.ph import PhaseType
from repro.models.priority_queue import PriorityClassInput, PriorityQueueModel
from repro.models.sprinting import SprintingRateModel
from repro.models.task_level import TaskLevelModel
from repro.models.wave_level import WaveLevelModel


@dataclass
class DeflatorDecision:
    """The deflator's output: drop ratios, timeouts and their predicted effect."""

    drop_ratios: Dict[int, float]
    sprint_timeouts: Dict[int, float]
    predicted_response_times: Dict[int, float]
    predicted_accuracy_loss: Dict[int, float]
    feasible: bool

    def drop_ratio(self, priority: int) -> float:
        return self.drop_ratios.get(priority, 0.0)


class TaskDeflator:
    """Chooses approximation levels θ_k and sprint timeouts T_k per priority.

    Parameters
    ----------
    profiles:
        One :class:`JobClassProfile` per priority class.
    arrival_rates:
        Mean arrival rate (jobs/second) per priority class.
    slots:
        Number of computing slots ``C``.
    accuracy_model:
        Accuracy-loss curve used to bound drop ratios; defaults to the paper's
        published calibration.
    model:
        Which processing-time model parameterises the queueing analysis:
        ``"wave"`` (§4.2, the default) or ``"task"`` (§4.1).
    sprint_speedup:
        DVFS speedup applied to sprinted classes when predicting their
        response times (1.0 = no sprinting considered).
    sprint_priorities:
        Which priorities sprint (used only when ``sprint_speedup > 1``).
    """

    def __init__(
        self,
        profiles: Mapping[int, JobClassProfile],
        arrival_rates: Mapping[int, float],
        slots: int,
        accuracy_model: Optional[AccuracyModel] = None,
        model: str = "wave",
        sprint_speedup: float = 1.0,
        sprint_priorities: Optional[Iterable[int]] = None,
    ) -> None:
        if set(profiles) != set(arrival_rates):
            raise ValueError("profiles and arrival_rates must cover the same priorities")
        if not profiles:
            raise ValueError("at least one priority class is required")
        if model not in ("wave", "task"):
            raise ValueError("model must be 'wave' or 'task'")
        if sprint_speedup < 1.0:
            raise ValueError("sprint_speedup must be at least 1")
        self.profiles = dict(profiles)
        self.arrival_rates = {k: float(v) for k, v in arrival_rates.items()}
        self.slots = int(slots)
        self.accuracy_model = accuracy_model or AccuracyModel.paper_default()
        self.model = model
        self.sprint_speedup = float(sprint_speedup)
        self.sprint_priorities = (
            set(sprint_priorities) if sprint_priorities is not None else set()
        )

    # -------------------------------------------------------------- models
    def service_distribution(self, priority: int, drop_ratio: float) -> PhaseType:
        """PH processing-time distribution of ``priority`` at ``drop_ratio``."""
        profile = self.profiles[priority]
        if self.model == "wave":
            builder = WaveLevelModel.from_profile(
                profile, self.slots, map_drop_ratio=drop_ratio
            )
        else:
            builder = TaskLevelModel.from_profile(
                profile, self.slots, map_drop_ratio=drop_ratio
            )
        ph = builder.build()
        if self.sprint_speedup > 1.0 and priority in self.sprint_priorities:
            # First-order sprinting effect: scale the whole distribution by the
            # effective mean-time ratio of the timeout-based sprint policy.
            sprint_model = SprintingRateModel(speedup=self.sprint_speedup, timeout=0.0)
            factor = sprint_model.effective_mean_time(ph) / ph.mean
            ph = ph.scaled(factor)
        return ph

    def predict_mean_processing_time(self, priority: int, drop_ratio: float) -> float:
        """Predicted mean processing (service) time at ``drop_ratio`` (Fig. 4)."""
        return self.service_distribution(priority, drop_ratio).mean

    def queue_model(self, drop_ratios: Mapping[int, float]) -> PriorityQueueModel:
        """The priority-queue model for a candidate drop-ratio assignment."""
        classes = [
            PriorityClassInput(
                priority=priority,
                arrival_rate=self.arrival_rates[priority],
                service=self.service_distribution(priority, drop_ratios.get(priority, 0.0)),
            )
            for priority in self.profiles
        ]
        return PriorityQueueModel(classes)

    def predict_response_times(
        self, drop_ratios: Mapping[int, float], discipline: str = "nonpreemptive"
    ) -> Dict[int, float]:
        """Predicted mean response time per class (Fig. 5)."""
        return self.queue_model(drop_ratios).mean_response_times(discipline)

    def predicted_utilisation(self, drop_ratios: Mapping[int, float]) -> float:
        return self.queue_model(drop_ratios).utilisation()

    # ------------------------------------------------------------ selection
    def max_drop_ratio(self, priority: int) -> float:
        """Largest drop ratio whose predicted accuracy loss the class tolerates."""
        tolerance = self.profiles[priority].max_accuracy_loss
        return self.accuracy_model.max_drop_for_error(tolerance)

    def feasible_drop_ratios(
        self, priority: int, candidates: Sequence[float]
    ) -> List[float]:
        """Candidate drop ratios within the class's accuracy tolerance."""
        ceiling = self.max_drop_ratio(priority)
        feasible = [theta for theta in candidates if 0.0 <= theta <= ceiling + 1e-12]
        return feasible or [0.0]

    def choose(
        self,
        candidates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
        latency_targets: Optional[Mapping[int, float]] = None,
        max_high_priority_degradation: Optional[float] = None,
        sprint_timeouts: Optional[Mapping[int, float]] = None,
        objective: str = "latency",
    ) -> DeflatorDecision:
        """Pick the drop-ratio assignment that best trades accuracy for latency.

        The search mirrors §5.2.1: the accuracy tolerance of each class bounds
        its drop ratio from above; the latency constraints (absolute targets
        and/or a cap on the high-priority degradation) filter candidate
        assignments; among the feasible ones the default ``"latency"``
        objective picks the assignment with the lowest predicted low-priority
        response time (ties broken by lower accuracy loss) — which selects
        DA(0,20) in the paper's use case — while ``"accuracy"`` prefers the
        least loss (ties broken by latency).

        Parameters
        ----------
        candidates:
            Grid of drop ratios considered per class.
        latency_targets:
            Optional per-priority upper bounds on the predicted mean response
            time.
        max_high_priority_degradation:
            Optional bound on the relative mean-latency degradation of the
            highest class compared to dropping nothing under the same
            (non-preemptive) discipline.
        sprint_timeouts:
            Sprint timeouts to report in the decision (the deflator forwards
            them to the sprinter; they do not affect the drop-ratio search).
        objective:
            ``"latency"`` (default) or ``"accuracy"``.
        """
        if objective not in ("latency", "accuracy"):
            raise ValueError("objective must be 'latency' or 'accuracy'")
        priorities = sorted(self.profiles, reverse=True)
        per_class_candidates = [
            self.feasible_drop_ratios(priority, candidates) for priority in priorities
        ]
        baseline = self.predict_response_times({p: 0.0 for p in priorities})
        highest = priorities[0]

        best: Optional[Tuple[Tuple[float, float], Dict[int, float], Dict[int, float]]] = None
        best_feasible = False
        for combo in itertools.product(*per_class_candidates):
            assignment = dict(zip(priorities, combo))
            responses = self.predict_response_times(assignment)
            feasible = all(math.isfinite(v) for v in responses.values())
            if latency_targets:
                for priority, target in latency_targets.items():
                    if responses.get(priority, float("inf")) > target:
                        feasible = False
            if max_high_priority_degradation is not None and math.isfinite(
                baseline[highest]
            ):
                degradation = responses[highest] / baseline[highest] - 1.0
                if degradation > max_high_priority_degradation:
                    feasible = False
            total_loss = sum(
                self.accuracy_model.error(theta) for theta in assignment.values()
            )
            lowest = priorities[-1]
            lowest_response = responses.get(lowest, float("inf"))
            if objective == "latency":
                score = (lowest_response, total_loss)
            else:
                score = (total_loss, lowest_response)
            if best is None:
                best = (score, assignment, responses)
                best_feasible = feasible
                continue
            if feasible and not best_feasible:
                best = (score, assignment, responses)
                best_feasible = True
            elif feasible == best_feasible and score < best[0]:
                best = (score, assignment, responses)
        assert best is not None  # at least one combination always exists
        _, assignment, responses = best
        losses = {
            priority: self.accuracy_model.error(theta)
            for priority, theta in assignment.items()
        }
        timeouts = dict(sprint_timeouts or {})
        return DeflatorDecision(
            drop_ratios=assignment,
            sprint_timeouts=timeouts,
            predicted_response_times=responses,
            predicted_accuracy_loss=losses,
            feasible=best_feasible,
        )

    def choose_sprint_timeout(
        self, priority: int, sprint_fraction: float, speedup: Optional[float] = None
    ) -> float:
        """Timeout so the class sprints roughly ``sprint_fraction`` of its execution."""
        ph = self.service_distribution(priority, 0.0)
        model = SprintingRateModel.for_budget_fraction(
            speedup=speedup if speedup is not None else max(self.sprint_speedup, 1.0),
            mean_execution_time=ph.mean,
            sprint_fraction=sprint_fraction,
        )
        return model.timeout
