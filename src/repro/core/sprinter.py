"""The sprinter: timers, budget tracking and DVFS actuation (§3.2, §3.3).

If sprinting is enabled, the deflator tells the sprinter the sprint timeout
``T_k`` of every dispatched job.  The sprinter arms a timer; when it fires and
budget remains, it boosts the CPU frequency (via the controller's callbacks,
the simulation analogue of ``cpupower``) until the job ends or the budget is
depleted.  The budget is replenished over time (e.g. six sprint-minutes per
hour) and never exceeds its cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.core.config import SprintConfig
from repro.engine.execution import JobExecution
from repro.simulation.des import Event, Simulator
from repro.telemetry.hub import NULL_HUB, TelemetryHub

class SprintBudgetPool(Protocol):
    """Duck-typed shared budget arbiter a sprinter can delegate to."""

    def available(self) -> Optional[float]:
        """Shared sprint-seconds currently available (``None`` = unlimited)."""

    def on_sprint_start(self, sprinter: "Sprinter") -> None:
        """A member sprinter started sprinting."""

    def on_sprint_end(self, sprinter: "Sprinter") -> None:
        """A member sprinter stopped sprinting."""


class Sprinter:
    """Tracks the sprinting budget and drives per-job sprint timers.

    Parameters
    ----------
    sim:
        The simulation kernel (for timers).
    config:
        The sprint configuration (eligibility, timeouts, budget, replenishment).
    on_sprint_start, on_sprint_end:
        Controller callbacks that actually change the cluster frequency, the
        in-flight task completion times and the energy-meter mode.
    budget_pool:
        Optional shared budget arbiter (e.g. a fleet-wide
        :class:`~repro.fleet.budget.SharedSprintBudget`).  When given, budget
        accounting is delegated to the pool: the sprinter asks the pool for
        availability, notifies it on sprint start/end, and may be stopped by
        the pool via :meth:`force_stop` when the shared budget runs dry.  The
        local ``config.budget_seconds`` is then ignored.
    telemetry, telemetry_src:
        Probe bus (default: the disabled ``NULL_HUB``) and the source label
        sprint start/end/denied events are published under.
    """

    def __init__(
        self,
        sim: Simulator,
        config: SprintConfig,
        on_sprint_start: Callable[[JobExecution], None],
        on_sprint_end: Callable[[JobExecution], None],
        budget_pool: Optional["SprintBudgetPool"] = None,
        telemetry: TelemetryHub = NULL_HUB,
        telemetry_src: str = "sprinter",
        on_sprint_denied: Optional[Callable[[JobExecution], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.on_sprint_start = on_sprint_start
        self.on_sprint_end = on_sprint_end
        self.on_sprint_denied = on_sprint_denied
        self.budget_pool = budget_pool
        self.telemetry = telemetry
        self.telemetry_src = telemetry_src

        self._budget = config.budget_seconds  # None = unlimited
        self._budget_updated_at = sim.now
        self._sprinting = False
        self._sprint_started_at: Optional[float] = None
        self._timer: Optional[Event] = None
        self._exhaust_event: Optional[Event] = None
        self._current: Optional[JobExecution] = None
        self.total_sprinted_seconds = 0.0
        self.sprints_started = 0
        self.sprints_denied = 0

    # --------------------------------------------------------------- budget
    @property
    def sprinting(self) -> bool:
        return self._sprinting

    def available_budget(self) -> Optional[float]:
        """Current sprint budget in seconds (``None`` = unlimited)."""
        if self.budget_pool is not None:
            return self.budget_pool.available()
        self._update_budget()
        return self._budget

    def _update_budget(self) -> None:
        if self.budget_pool is not None or self._budget is None:
            self._budget_updated_at = self.sim.now
            return
        now = self.sim.now
        elapsed = now - self._budget_updated_at
        if elapsed <= 0:
            return
        rate = self.config.replenish_rate - (1.0 if self._sprinting else 0.0)
        self._budget += rate * elapsed
        cap = self.config.budget_cap()
        if cap is not None:
            self._budget = min(self._budget, cap)
        self._budget = max(self._budget, 0.0)
        self._budget_updated_at = now

    # ---------------------------------------------------------------- hooks
    def on_dispatch(self, execution: JobExecution) -> None:
        """A job was dispatched; arm its sprint timer if it is eligible."""
        priority = execution.job.priority
        if not self.config.sprints(priority):
            return
        timeout = self.config.timeout_for(priority)
        self._current = execution
        if timeout <= 0:
            self._try_start_sprint(execution)
        else:
            self._timer = self.sim.schedule(
                timeout, self._make_timer_callback(execution), priority=2
            )

    def on_job_end(self, execution: JobExecution) -> None:
        """The job completed or was evicted; cancel timers, stop sprinting."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._sprinting and self._current is execution:
            self._stop_sprint(execution)
        if self._current is execution:
            self._current = None

    # ------------------------------------------------------------ internals
    def _make_timer_callback(self, execution: JobExecution):
        def _callback(_sim: Simulator) -> None:
            self._timer = None
            if execution.running:
                self._try_start_sprint(execution)

        return _callback

    def _try_start_sprint(self, execution: JobExecution) -> None:
        self._update_budget()
        if self._sprinting:
            return
        available = self.available_budget()
        if available is not None and available <= 0:
            self.sprints_denied += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "sprint_denied",
                    self.sim.now,
                    src=self.telemetry_src,
                    job_id=execution.job.job_id,
                )
            if self.on_sprint_denied is not None:
                self.on_sprint_denied(execution)
            return
        self._sprinting = True
        self._sprint_started_at = self.sim.now
        self.sprints_started += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "sprint_start",
                self.sim.now,
                src=self.telemetry_src,
                job_id=execution.job.job_id,
            )
        self.on_sprint_start(execution)
        if self.budget_pool is not None:
            # The pool schedules (and reschedules) the shared exhaust event.
            self.budget_pool.on_sprint_start(self)
        elif self._budget is not None:
            net_drain = 1.0 - self.config.replenish_rate
            if net_drain > 0:
                time_to_exhaust = self._budget / net_drain
                self._exhaust_event = self.sim.schedule(
                    time_to_exhaust, self._make_exhaust_callback(execution), priority=2
                )

    def _make_exhaust_callback(self, execution: JobExecution):
        def _callback(_sim: Simulator) -> None:
            self._exhaust_event = None
            if self._sprinting and self._current is execution:
                self._stop_sprint(execution)

        return _callback

    def force_stop(self) -> None:
        """Stop the current sprint immediately (shared budget exhausted)."""
        if self._sprinting and self._current is not None:
            self._stop_sprint(self._current)

    def _stop_sprint(self, execution: JobExecution) -> None:
        self._update_budget()
        self._sprinting = False
        sprinted = 0.0
        if self._sprint_started_at is not None:
            sprinted = self.sim.now - self._sprint_started_at
            self.total_sprinted_seconds += sprinted
            self._sprint_started_at = None
        if self.telemetry.enabled:
            self.telemetry.emit(
                "sprint_end",
                self.sim.now,
                src=self.telemetry_src,
                job_id=execution.job.job_id,
                sprinted=sprinted,
            )
        if self._exhaust_event is not None:
            self._exhaust_event.cancel()
            self._exhaust_event = None
        if self.budget_pool is not None:
            self.budget_pool.on_sprint_end(self)
        self.on_sprint_end(execution)
