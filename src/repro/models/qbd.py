"""Matrix-geometric solver for the M/PH/1 queue.

The M/PH/1 queue is a quasi-birth-death (QBD) process: the level is the number
of jobs in the system and the phase is the service phase of the job in
service.  Its stationary distribution is matrix-geometric,
``π_{n+1} = π_n · R``, where ``R`` solves ``A0 + R·A1 + R²·A2 = 0``.

This solver is used to cross-validate the simpler Pollaczek–Khinchine formula
(:func:`repro.models.mg1.mg1_mean_waiting_time`) on PH service times and as a
building block for single-class what-if questions in the deflator.  It follows
the standard construction of Latouche & Ramaswami (the paper's reference [28]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.models.ph import PhaseType


@dataclass
class MPH1Queue:
    """An M/PH/1 queue with Poisson arrivals and PH service."""

    arrival_rate: float
    service: PhaseType

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")

    # ------------------------------------------------------------ stability
    @property
    def utilisation(self) -> float:
        return self.arrival_rate * self.service.mean

    @property
    def stable(self) -> bool:
        return self.utilisation < 1.0

    # -------------------------------------------------------------- blocks
    def qbd_blocks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the repeating-level blocks ``(A0, A1, A2)``.

        ``A0`` — arrivals (level up), ``A1`` — local transitions,
        ``A2`` — service completions (level down, restarting service).
        """
        n = self.service.order
        lam = self.arrival_rate
        A0 = lam * np.identity(n)
        A1 = self.service.T - lam * np.identity(n)
        A2 = np.outer(self.service.exit_rates, self.service.alpha)
        return A0, A1, A2

    def rate_matrix(self, tol: float = 1e-12, max_iter: int = 100_000) -> np.ndarray:
        """Solve ``A0 + R·A1 + R²·A2 = 0`` by functional iteration."""
        if not self.stable:
            raise ValueError("the queue is unstable (utilisation >= 1)")
        A0, A1, A2 = self.qbd_blocks()
        inv_A1 = np.linalg.inv(-A1)
        R = np.zeros_like(A0)
        for _ in range(max_iter):
            R_next = (A0 + R @ R @ A2) @ inv_A1
            if np.max(np.abs(R_next - R)) < tol:
                return R_next
            R = R_next
        raise RuntimeError("rate-matrix iteration did not converge")

    # ------------------------------------------------------------ solution
    def solve(self) -> Tuple[float, np.ndarray, np.ndarray]:
        """Return ``(p0, pi1, R)``: empty probability, level-1 vector, rate matrix.

        The boundary equations of the M/PH/1 QBD are::

            p0 · (−λ) + π_1 · A2 · 1-restart = 0    (flow into/out of level 0)

        Here level 0 has a single state (empty system); an arrival starts
        service according to ``alpha``.
        """
        if not self.stable:
            raise ValueError("the queue is unstable (utilisation >= 1)")
        n = self.service.order
        lam = self.arrival_rate
        R = self.rate_matrix()
        A0, A1, A2 = self.qbd_blocks()

        # Unknowns: p0 (scalar) and pi1 (1 x n).  Balance equations:
        #   level 0:  -lam * p0 + pi1 @ t = 0                 (t = exit rates)
        #   level 1:  p0 * lam * alpha + pi1 @ (A1 + R @ A2) = 0
        # Normalisation: p0 + pi1 @ (I - R)^{-1} @ 1 = 1.
        t = self.service.exit_rates
        unknowns = n + 1
        M = np.zeros((unknowns, unknowns))
        rhs = np.zeros(unknowns)

        # Level-0 balance.
        M[0, 0] = -lam
        M[0, 1:] = t
        # Level-1 balance (n equations, drop one later for normalisation).
        level1 = np.zeros((n, unknowns))
        level1[:, 0] = lam * self.service.alpha
        level1[:, 1:] = (A1 + R @ A2).T
        M[1:, :] = level1
        # Replace the last equation with the normalisation condition.
        inv_ImR = np.linalg.inv(np.identity(n) - R)
        M[-1, 0] = 1.0
        M[-1, 1:] = (inv_ImR @ np.ones(n))
        rhs[-1] = 1.0

        solution = np.linalg.solve(M, rhs)
        p0 = float(solution[0])
        pi1 = solution[1:]
        return p0, pi1, R

    def mean_queue_length(self) -> float:
        """Mean number of jobs in the system ``E[N]``."""
        p0, pi1, R = self.solve()
        n = self.service.order
        I = np.identity(n)
        inv = np.linalg.inv(I - R)
        ones = np.ones(n)
        # E[N] = sum_{k>=1} k * pi_k 1 with pi_k = pi1 R^{k-1}
        #      = pi1 (I-R)^{-2} 1
        return float(pi1 @ inv @ inv @ ones)

    def mean_response_time(self) -> float:
        """Mean response time via Little's law."""
        return self.mean_queue_length() / self.arrival_rate

    def mean_waiting_time(self) -> float:
        """Mean waiting time (response minus service)."""
        return self.mean_response_time() - self.service.mean
