"""Wave-level model of the job processing time (§4.2).

Instead of tracking individual tasks (which forces exponential task times),
the wave-level model observes that tasks in a stage have similar durations and
therefore execute in *waves* of at most ``C`` tasks: a job with ``t̄`` effective
map tasks needs ``⌈t̄/C⌉`` map waves.  Each wave has its own PH execution-time
distribution, and the job processing time is the PH obtained by chaining the
setup, map-wave, shuffle and reduce-wave blocks.

The block structure follows the paper's construction: with a maximum of ``W``
map waves, a job requiring ``d`` waves *enters* the chain at wave block
``W − d + 1`` (with probability ``qm(d)``) and traverses the remaining blocks
in order, so the example transition matrix of §4.2 is produced exactly for
``wm = wr = 2``.  The wave-count probabilities are::

    qm(d) = Σ_{t̄ ∈ ((d−1)C, dC]} Σ_{t: ⌈t(1−θ)⌉ = t̄} pm(t)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.job import effective_task_count
from repro.models.ph import PhaseType
from repro.models.task_level import _normalise_distribution


def wave_count_distribution(
    task_distribution: Mapping[int, float], drop_ratio: float, slots: int
) -> Dict[int, float]:
    """Distribution ``q(d)`` of the number of waves after dropping.

    ``d = 0`` collects the probability mass of jobs whose tasks are all
    dropped (no wave executes at all).
    """
    if slots <= 0:
        raise ValueError("slots must be positive")
    dist = _normalise_distribution(task_distribution)
    waves: Dict[int, float] = {}
    for count, prob in dist.items():
        kept = effective_task_count(count, drop_ratio)
        d = math.ceil(kept / slots) if kept > 0 else 0
        waves[d] = waves.get(d, 0.0) + prob
    return waves


@dataclass
class WaveLevelModel:
    """Wave-level PH model of one priority class.

    Parameters
    ----------
    slots:
        Computing slots ``C``.
    map_task_distribution, reduce_task_distribution:
        ``pm(t)`` and ``pr(u)``.
    map_wave_ph, reduce_wave_ph:
        PH distribution of a single map/reduce wave.  Either one PH (used for
        every wave) or a list with one PH per wave index ``d = 1 … W``.
    setup_ph, shuffle_ph:
        Optional PH distributions of the setup (overhead) and shuffle stages.
    map_drop_ratio, reduce_drop_ratio:
        ``θm`` and ``θr``.
    """

    slots: int
    map_task_distribution: Mapping[int, float]
    reduce_task_distribution: Mapping[int, float]
    map_wave_ph: object
    reduce_wave_ph: object
    setup_ph: Optional[PhaseType] = None
    shuffle_ph: Optional[PhaseType] = None
    map_drop_ratio: float = 0.0
    reduce_drop_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError("slots must be positive")
        if not 0.0 <= self.map_drop_ratio < 1.0:
            raise ValueError("map drop ratio must be in [0, 1)")
        if not 0.0 <= self.reduce_drop_ratio < 1.0:
            raise ValueError("reduce drop ratio must be in [0, 1)")
        self.map_task_distribution = _normalise_distribution(self.map_task_distribution)
        self.reduce_task_distribution = _normalise_distribution(self.reduce_task_distribution)

    # -------------------------------------------------------------- helpers
    def map_wave_distribution(self) -> Dict[int, float]:
        """``qm(d)`` for the map stage."""
        return wave_count_distribution(
            self.map_task_distribution, self.map_drop_ratio, self.slots
        )

    def reduce_wave_distribution(self) -> Dict[int, float]:
        """``qr(d)`` for the reduce stage."""
        return wave_count_distribution(
            self.reduce_task_distribution, self.reduce_drop_ratio, self.slots
        )

    def _wave_phs(self, spec, count: int) -> List[PhaseType]:
        if count == 0:
            return []
        if isinstance(spec, PhaseType):
            return [spec] * count
        phs = list(spec)
        if len(phs) < count:
            raise ValueError(
                f"need at least {count} per-wave PH distributions, got {len(phs)}"
            )
        if not all(isinstance(p, PhaseType) for p in phs[:count]):
            raise TypeError("per-wave distributions must be PhaseType instances")
        return phs[:count]

    # ---------------------------------------------------------------- build
    def build(self) -> PhaseType:
        """Construct the PH representation of the job processing time."""
        qm = self.map_wave_distribution()
        qr = self.reduce_wave_distribution()
        max_map_waves = max(qm)
        max_reduce_waves = max(qr)
        map_waves = self._wave_phs(self.map_wave_ph, max_map_waves)
        reduce_waves = self._wave_phs(self.reduce_wave_ph, max_reduce_waves)

        blocks: List[PhaseType] = []
        block_roles: List[str] = []
        if self.setup_ph is not None:
            blocks.append(self.setup_ph)
            block_roles.append("setup")
        map_offset = len(blocks)
        for ph in map_waves:
            blocks.append(ph)
            block_roles.append("map")
        shuffle_offset = len(blocks)
        if self.shuffle_ph is not None:
            blocks.append(self.shuffle_ph)
            block_roles.append("shuffle")
        reduce_offset = len(blocks)
        for ph in reduce_waves:
            blocks.append(ph)
            block_roles.append("reduce")

        if not blocks:
            raise ValueError("the model has no stages at all (everything dropped/absent)")

        sizes = [b.order for b in blocks]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        total = int(offsets[-1])
        A = np.zeros((total, total))
        alpha = np.zeros(total)

        def place_block(i: int) -> slice:
            return slice(offsets[i], offsets[i] + sizes[i])

        for i, block in enumerate(blocks):
            A[place_block(i), place_block(i)] = block.T

        # Entry distribution over map blocks (or shuffle/absorption) given the
        # wave count d: a d-wave job enters map block (W - d + 1).
        def map_entry(block_weight_sink: np.ndarray, source_exit: Optional[np.ndarray],
                      source_index: Optional[int]) -> float:
            """Wire transitions for entering the map stage.

            Returns the probability mass that bypasses the map stage entirely
            (d = 0), which the caller must route to the shuffle stage.
            """
            bypass = 0.0
            for d, prob in qm.items():
                if d == 0:
                    bypass += prob
                    continue
                target_block = map_offset + (max_map_waves - d)
                target = blocks[target_block]
                if source_exit is None or source_index is None:
                    alpha[place_block(target_block)] += prob * target.alpha
                else:
                    A[place_block(source_index), place_block(target_block)] += prob * np.outer(
                        source_exit, target.alpha
                    )
            return bypass

        def wire_to_shuffle(prob: float, source_exit: Optional[np.ndarray],
                            source_index: Optional[int]) -> None:
            """Route probability mass into the shuffle stage (or beyond)."""
            if prob <= 0:
                return
            if self.shuffle_ph is not None:
                target = blocks[shuffle_offset]
                if source_exit is None or source_index is None:
                    alpha[place_block(shuffle_offset)] += prob * target.alpha
                else:
                    A[place_block(source_index), place_block(shuffle_offset)] += prob * np.outer(
                        source_exit, target.alpha
                    )
            else:
                wire_to_reduce(prob, source_exit, source_index)

        def wire_to_reduce(prob: float, source_exit: Optional[np.ndarray],
                           source_index: Optional[int]) -> None:
            """Route probability mass into the reduce stage entry (d-wave aware)."""
            if prob <= 0:
                return
            for d, dprob in qr.items():
                mass = prob * dprob
                if mass <= 0:
                    continue
                if d == 0 or max_reduce_waves == 0:
                    # Absorption: nothing to wire; the exit rates handle it.
                    continue
                target_block = reduce_offset + (max_reduce_waves - d)
                target = blocks[target_block]
                if source_exit is None or source_index is None:
                    alpha[place_block(target_block)] += mass * target.alpha
                else:
                    A[place_block(source_index), place_block(target_block)] += mass * np.outer(
                        source_exit, target.alpha
                    )

        # --- setup stage wiring (or initial vector if there is no setup) ----
        if self.setup_ph is not None:
            alpha[place_block(0)] = self.setup_ph.alpha
            setup_exit = self.setup_ph.exit_rates
            if max_map_waves > 0:
                bypass = map_entry(alpha, setup_exit, 0)
            else:
                bypass = 1.0
            wire_to_shuffle(bypass, setup_exit, 0)
        else:
            if max_map_waves > 0:
                bypass = map_entry(alpha, None, None)
            else:
                bypass = 1.0
            wire_to_shuffle(bypass, None, None)

        # --- map wave chaining -------------------------------------------
        for w in range(max_map_waves):
            block_index = map_offset + w
            exit_vec = blocks[block_index].exit_rates
            if w + 1 < max_map_waves:
                target_block = block_index + 1
                target = blocks[target_block]
                A[place_block(block_index), place_block(target_block)] += np.outer(
                    exit_vec, target.alpha
                )
            else:
                wire_to_shuffle(1.0, exit_vec, block_index)

        # --- shuffle wiring ------------------------------------------------
        if self.shuffle_ph is not None:
            wire_to_reduce(1.0, self.shuffle_ph.exit_rates, shuffle_offset)

        # --- reduce wave chaining -----------------------------------------
        for w in range(max_reduce_waves):
            block_index = reduce_offset + w
            exit_vec = blocks[block_index].exit_rates
            if w + 1 < max_reduce_waves:
                target_block = block_index + 1
                target = blocks[target_block]
                A[place_block(block_index), place_block(target_block)] += np.outer(
                    exit_vec, target.alpha
                )
            # The last reduce wave exits to absorption implicitly.

        # Normalise tiny numerical negatives introduced by the outer products.
        alpha = np.clip(alpha, 0.0, None)
        total_mass = alpha.sum()
        if total_mass <= 0:
            raise ValueError("degenerate model: no initial probability mass")
        alpha = alpha / total_mass
        return PhaseType(alpha, A)

    # -------------------------------------------------------------- metrics
    def mean_processing_time(self) -> float:
        return self.build().mean

    def processing_time_scv(self) -> float:
        return self.build().scv

    def with_drop_ratios(
        self, map_drop_ratio: float, reduce_drop_ratio: Optional[float] = None
    ) -> "WaveLevelModel":
        return WaveLevelModel(
            slots=self.slots,
            map_task_distribution=dict(self.map_task_distribution),
            reduce_task_distribution=dict(self.reduce_task_distribution),
            map_wave_ph=self.map_wave_ph,
            reduce_wave_ph=self.reduce_wave_ph,
            setup_ph=self.setup_ph,
            shuffle_ph=self.shuffle_ph,
            map_drop_ratio=map_drop_ratio,
            reduce_drop_ratio=(
                self.reduce_drop_ratio if reduce_drop_ratio is None else reduce_drop_ratio
            ),
        )

    @classmethod
    def from_profile(
        cls,
        profile,
        slots: int,
        map_drop_ratio: float = 0.0,
        reduce_drop_ratio: float = 0.0,
    ) -> "WaveLevelModel":
        """Build a wave-level model from a :class:`JobClassProfile`.

        Each wave's duration is approximated by a PH fit of the profiled
        per-task mean and SCV (tasks in a wave run concurrently and have
        similar durations, so the wave lasts roughly one task time); the
        setup PH is taken at the requested drop ratio via the profile's
        linear interpolation.
        """
        map_mean = profile.mean_map_task_time()
        scv = max(profile.task_scv, 1e-3)
        map_wave_ph = PhaseType.fit_mean_scv(map_mean, scv)
        reduce_wave_ph = PhaseType.fit_mean_scv(profile.reduce_time, scv)
        setup_time = profile.setup_time(min(map_drop_ratio, 0.9))
        setup_ph = PhaseType.fit_mean_scv(setup_time, 0.1) if setup_time > 0 else None
        shuffle_ph = (
            PhaseType.fit_mean_scv(profile.shuffle_time, 0.1)
            if profile.shuffle_time > 0
            else None
        )
        return cls(
            slots=slots,
            map_task_distribution={profile.partitions * profile.num_stages: 1.0},
            reduce_task_distribution={max(profile.reduce_tasks * profile.num_stages, 1): 1.0},
            map_wave_ph=map_wave_ph,
            reduce_wave_ph=reduce_wave_ph,
            setup_ph=setup_ph,
            shuffle_ph=shuffle_ph,
            map_drop_ratio=map_drop_ratio,
            reduce_drop_ratio=reduce_drop_ratio,
        )
