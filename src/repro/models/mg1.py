"""M/G/1 and M[K]/G/1 priority mean-value formulas.

These closed-form results give the exact mean waiting/response times of a
single-server queue with Poisson arrivals — the arrival model used in the
paper's experiments — for:

* a single class (Pollaczek–Khinchine),
* ``K`` priority classes under **non-preemptive** priority (the DiAS and NP
  configurations), and
* ``K`` priority classes under **preemptive-resume** priority (an optimistic
  bound for the paper's preemptive baseline, which actually *restarts* evicted
  jobs from scratch and therefore performs no better than preemptive-resume).

Classes are identified by their priority value; **higher values have
precedence**, matching the paper's convention (§4: a priority-``k`` job has
precedence over jobs in levels ``l < k``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class ServiceMoments:
    """First two moments of a class's service-time distribution."""

    mean: float
    second_moment: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean service time must be positive")
        if self.second_moment < self.mean**2:
            raise ValueError("second moment must be at least mean^2")

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean**2


def mg1_mean_waiting_time(arrival_rate: float, service: ServiceMoments) -> float:
    """Pollaczek–Khinchine mean waiting time of an M/G/1 queue."""
    if arrival_rate < 0:
        raise ValueError("arrival rate must be non-negative")
    rho = arrival_rate * service.mean
    if rho >= 1.0:
        return float("inf")
    return arrival_rate * service.second_moment / (2.0 * (1.0 - rho))


def _validate_inputs(
    arrival_rates: Mapping[int, float], services: Mapping[int, ServiceMoments]
) -> None:
    if set(arrival_rates) != set(services):
        raise ValueError("arrival_rates and services must cover the same priority classes")
    if not arrival_rates:
        raise ValueError("at least one priority class is required")
    for k, rate in arrival_rates.items():
        if rate < 0:
            raise ValueError(f"arrival rate of class {k} must be non-negative")


def total_utilisation(
    arrival_rates: Mapping[int, float], services: Mapping[int, ServiceMoments]
) -> float:
    """Offered load ``ρ = Σ λ_k E[S_k]``."""
    _validate_inputs(arrival_rates, services)
    return sum(arrival_rates[k] * services[k].mean for k in arrival_rates)


def nonpreemptive_priority_response_times(
    arrival_rates: Mapping[int, float], services: Mapping[int, ServiceMoments]
) -> Dict[int, float]:
    """Mean response time per class under non-preemptive priority.

    Classic result (Cobham): with ``R = Σ_j λ_j E[S_j²] / 2`` the mean residual
    work found on arrival (including the job in service regardless of class),

        W_k = R / ((1 − ρ_{>k}) (1 − ρ_{>k} − ρ_k)),   T_k = W_k + E[S_k]

    where ``ρ_{>k}`` is the load of classes with *strictly higher* priority.
    """
    _validate_inputs(arrival_rates, services)
    residual = sum(
        arrival_rates[j] * services[j].second_moment for j in arrival_rates
    ) / 2.0
    response: Dict[int, float] = {}
    for k in arrival_rates:
        rho_higher = sum(
            arrival_rates[j] * services[j].mean for j in arrival_rates if j > k
        )
        rho_k = arrival_rates[k] * services[k].mean
        denom = (1.0 - rho_higher) * (1.0 - rho_higher - rho_k)
        if denom <= 0:
            response[k] = float("inf")
            continue
        waiting = residual / denom
        response[k] = waiting + services[k].mean
    return response


def preemptive_resume_response_times(
    arrival_rates: Mapping[int, float], services: Mapping[int, ServiceMoments]
) -> Dict[int, float]:
    """Mean response time per class under preemptive-resume priority.

    Standard result: only classes of priority ``≥ k`` matter for class ``k``:

        T_k = E[S_k] / (1 − ρ_{>k})
              + (Σ_{j ≥ k} λ_j E[S_j²] / 2) / ((1 − ρ_{>k}) (1 − ρ_{>k} − ρ_k))
    """
    _validate_inputs(arrival_rates, services)
    response: Dict[int, float] = {}
    for k in arrival_rates:
        higher = [j for j in arrival_rates if j > k]
        rho_higher = sum(arrival_rates[j] * services[j].mean for j in higher)
        rho_k = arrival_rates[k] * services[k].mean
        if rho_higher >= 1.0 or rho_higher + rho_k >= 1.0:
            response[k] = float("inf")
            continue
        residual = sum(
            arrival_rates[j] * services[j].second_moment for j in higher + [k]
        ) / 2.0
        response[k] = services[k].mean / (1.0 - rho_higher) + residual / (
            (1.0 - rho_higher) * (1.0 - rho_higher - rho_k)
        )
    return response


def nonpreemptive_priority_waiting_times(
    arrival_rates: Mapping[int, float], services: Mapping[int, ServiceMoments]
) -> Dict[int, float]:
    """Mean waiting (queueing) time per class under non-preemptive priority."""
    responses = nonpreemptive_priority_response_times(arrival_rates, services)
    return {k: responses[k] - services[k].mean for k in responses}
