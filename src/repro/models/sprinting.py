"""Effective sprinting-rate model.

The queueing models of §4 need per-class service rates.  When a class is
sprinted, its service rate is "approximately captured by the effective
sprinting rates as a weighted average of the sprinted and non-sprinted
execution times per task" (the paper assumes an oracle supplies them).  This
module *is* that oracle for the timeout-based policy DiAS uses:

* a job starts at the base frequency;
* after the sprint timeout ``T`` (if any budget remains) the frequency is
  boosted, multiplying the execution rate by the DVFS speedup ``s``;
* sprinting lasts until the job ends or the per-job budget is exhausted.

Given a job execution-time distribution (at the base frequency) the model
computes the expected sprinted/non-sprinted split and the resulting effective
mean execution time and rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.models.ph import PhaseType


def _integrate_sf(ph: PhaseType, upper: float, steps: int = 400) -> float:
    """``∫_0^upper P(X > x) dx`` by the composite trapezoid rule."""
    if upper <= 0:
        return 0.0
    step = upper / steps
    total = 0.0
    prev = ph.sf(0.0)
    for i in range(1, steps + 1):
        current = ph.sf(i * step)
        total += 0.5 * (prev + current) * step
        prev = current
    return total


@dataclass(frozen=True)
class SprintingRateModel:
    """Effective execution time/rate under timeout-based sprinting.

    Parameters
    ----------
    speedup:
        DVFS execution-rate multiplier while sprinting (≥ 1).
    timeout:
        Sprint timeout ``T_k``: base-frequency execution before the boost.
        ``0`` sprints from dispatch (the paper's *unlimited* scenario uses a
        zero timeout and an effectively infinite budget).
    max_sprint_seconds:
        Optional per-job cap on sprinted wall-clock time (budget share).
    """

    speedup: float
    timeout: float = 0.0
    max_sprint_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.speedup < 1.0:
            raise ValueError("speedup must be at least 1")
        if self.timeout < 0:
            raise ValueError("timeout must be non-negative")
        if self.max_sprint_seconds is not None and self.max_sprint_seconds < 0:
            raise ValueError("max_sprint_seconds must be non-negative")

    # --------------------------------------------------------- deterministic
    def effective_time_deterministic(self, base_time: float) -> float:
        """Effective wall-clock time of a job with deterministic base duration."""
        if base_time < 0:
            raise ValueError("base_time must be non-negative")
        if base_time <= self.timeout or self.speedup == 1.0:
            return base_time
        remaining_work = base_time - self.timeout
        sprint_wall = remaining_work / self.speedup
        if self.max_sprint_seconds is not None and sprint_wall > self.max_sprint_seconds:
            sprinted_work = self.max_sprint_seconds * self.speedup
            return self.timeout + self.max_sprint_seconds + (remaining_work - sprinted_work)
        return self.timeout + sprint_wall

    def sprinted_seconds_deterministic(self, base_time: float) -> float:
        """Sprinted wall-clock seconds for a deterministic base duration."""
        if base_time <= self.timeout or self.speedup == 1.0:
            return 0.0
        sprint_wall = (base_time - self.timeout) / self.speedup
        if self.max_sprint_seconds is not None:
            sprint_wall = min(sprint_wall, self.max_sprint_seconds)
        return sprint_wall

    # ------------------------------------------------------------ stochastic
    def effective_mean_time(self, base_distribution: PhaseType) -> float:
        """Expected effective execution time when the base time is PH-distributed.

        The base-frequency work is split into the part executed before the
        timeout, ``E[min(D, T)] = ∫_0^T P(D > x) dx``, and the part after it,
        ``E[(D − T)^+]``, which runs ``speedup`` times faster (up to the
        optional per-job sprint cap, applied on the mean as a first-order
        correction).
        """
        mean = base_distribution.mean
        if self.speedup == 1.0:
            return mean
        before = _integrate_sf(base_distribution, self.timeout) if self.timeout > 0 else 0.0
        after_work = max(0.0, mean - before)
        sprint_wall = after_work / self.speedup
        if self.max_sprint_seconds is not None and sprint_wall > self.max_sprint_seconds:
            sprinted_work = self.max_sprint_seconds * self.speedup
            return before + self.max_sprint_seconds + (after_work - sprinted_work)
        return before + sprint_wall

    def effective_rate(self, base_distribution: PhaseType) -> float:
        """Effective service rate (1 / effective mean time)."""
        effective = self.effective_mean_time(base_distribution)
        if effective <= 0:
            return float("inf")
        return 1.0 / effective

    def expected_sprinted_fraction(self, base_distribution: PhaseType) -> float:
        """Expected fraction of the job's wall-clock time spent sprinting."""
        effective = self.effective_mean_time(base_distribution)
        if effective <= 0:
            return 0.0
        before = _integrate_sf(base_distribution, self.timeout) if self.timeout > 0 else 0.0
        after_work = max(0.0, base_distribution.mean - before)
        sprint_wall = after_work / self.speedup
        if self.max_sprint_seconds is not None:
            sprint_wall = min(sprint_wall, self.max_sprint_seconds)
        return sprint_wall / effective

    # ------------------------------------------------------------- calibration
    @classmethod
    def for_budget_fraction(
        cls,
        speedup: float,
        mean_execution_time: float,
        sprint_fraction: float,
    ) -> "SprintingRateModel":
        """Choose the timeout so that roughly ``sprint_fraction`` of a mean job sprints.

        The paper's *limited* budget lets high-priority jobs sprint for ~35 %
        of their execution time, achieved with a 65 s timeout for ~100 s jobs;
        this constructor reproduces that calibration for arbitrary job sizes.
        """
        if not 0.0 <= sprint_fraction <= 1.0:
            raise ValueError("sprint_fraction must be in [0, 1]")
        if mean_execution_time <= 0:
            raise ValueError("mean_execution_time must be positive")
        timeout = mean_execution_time * (1.0 - sprint_fraction)
        return cls(speedup=speedup, timeout=timeout)
