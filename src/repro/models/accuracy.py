"""Accuracy-loss models: relative error as a function of the drop ratio.

Figure 6 of the paper shows that the mean absolute percentage error of the
text analysis grows *sub-linearly* with the map-task drop ratio: roughly 8.5 %
at a 10 % drop, 15 % at 20 %, and ≈32 % at 40 %.  DiAS estimates this curve
offline and the deflator then inverts it to find the largest admissible drop
ratio for a class's error tolerance.

Two sources feed the curve:

* measurements from the real mini-MapReduce runs in :mod:`repro.mapreduce`
  (fit via :meth:`AccuracyModel.from_points`), and
* the paper's published operating points (:meth:`AccuracyModel.paper_default`)
  for experiments that only need the published calibration.

The model is a power law ``error(θ) = a · θ^b`` with ``0 < b ≤ 1`` (sub-linear
growth), fitted in log-log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def compose_stage_drop_ratios(stage_drop_ratios: Sequence[float]) -> float:
    """Total effective drop ratio of applying per-stage ratios in sequence.

    Dropping ``θ_s`` of the partitions at every stage of a multi-stage pipeline
    (the triangle-count case, §5.2.4) keeps a fraction ``Π (1 − θ_s)`` of the
    data overall, so the effective drop ratio is ``1 − Π (1 − θ_s)``.
    """
    keep = 1.0
    for theta in stage_drop_ratios:
        if not 0.0 <= theta <= 1.0:
            raise ValueError(f"stage drop ratios must be in [0, 1], got {theta!r}")
        keep *= 1.0 - theta
    return 1.0 - keep


@dataclass(frozen=True)
class AccuracyModel:
    """Power-law accuracy-loss curve ``error(θ) = a · θ^b``."""

    coefficient: float
    exponent: float

    def __post_init__(self) -> None:
        if self.coefficient < 0:
            raise ValueError("coefficient must be non-negative")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    # ------------------------------------------------------------ evaluation
    def error(self, drop_ratio: float) -> float:
        """Relative error (fraction, not percent) at ``drop_ratio``."""
        if not 0.0 <= drop_ratio <= 1.0:
            raise ValueError("drop ratio must be in [0, 1]")
        if drop_ratio == 0.0:
            return 0.0
        return min(1.0, self.coefficient * drop_ratio**self.exponent)

    def error_percent(self, drop_ratio: float) -> float:
        """Relative error in percent at ``drop_ratio``."""
        return 100.0 * self.error(drop_ratio)

    def max_drop_for_error(self, error_tolerance: float) -> float:
        """Largest drop ratio whose predicted error stays within the tolerance."""
        if error_tolerance < 0:
            raise ValueError("error tolerance must be non-negative")
        if error_tolerance == 0 or self.coefficient == 0:
            return 0.0 if error_tolerance == 0 else 1.0
        theta = (error_tolerance / self.coefficient) ** (1.0 / self.exponent)
        return max(0.0, min(1.0, theta))

    def curve(self, drop_ratios: Iterable[float]) -> List[Tuple[float, float]]:
        """Evaluate the curve at each drop ratio, returning ``(θ, error%)`` pairs."""
        return [(theta, self.error_percent(theta)) for theta in drop_ratios]

    # ------------------------------------------------------------- factories
    @classmethod
    def from_points(cls, points: Sequence[Tuple[float, float]]) -> "AccuracyModel":
        """Fit the power law to measured ``(drop_ratio, error_fraction)`` points.

        The fit is least-squares in log-log space; points with non-positive
        coordinates are skipped (a drop ratio of zero always has zero error).
        """
        usable = [(t, e) for t, e in points if t > 0 and e > 0]
        if len(usable) < 2:
            raise ValueError("need at least two positive (drop, error) points to fit")
        log_t = [math.log(t) for t, _ in usable]
        log_e = [math.log(e) for _, e in usable]
        n = len(usable)
        mean_t = sum(log_t) / n
        mean_e = sum(log_e) / n
        ss_tt = sum((lt - mean_t) ** 2 for lt in log_t)
        if ss_tt == 0:
            raise ValueError("drop ratios must not all be identical")
        slope = sum((lt - mean_t) * (le - mean_e) for lt, le in zip(log_t, log_e)) / ss_tt
        intercept = mean_e - slope * mean_t
        exponent = max(slope, 1e-6)
        coefficient = math.exp(intercept)
        return cls(coefficient=coefficient, exponent=exponent)

    @classmethod
    def paper_default(cls) -> "AccuracyModel":
        """The curve through the paper's published operating points (Fig. 6).

        Dropping 10 %, 20 % and 40 % of map tasks yields ≈8.5 %, ≈15 % and
        ≈32 % mean absolute percentage error, respectively.
        """
        return cls.from_points([(0.1, 0.085), (0.2, 0.15), (0.4, 0.32)])

    @classmethod
    def zero(cls) -> "AccuracyModel":
        """A degenerate curve with no accuracy loss (exact computation)."""
        return cls(coefficient=0.0, exponent=1.0)
