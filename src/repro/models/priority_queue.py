"""Response-time model for the multi-priority single-server queue.

The DiAS deflator needs, for every candidate drop-ratio assignment, the mean
(and ideally tail) response time of each priority class.  The paper uses
Horváth's exact MMAP[K]/PH[K]/1 analysis; this module provides the equivalent
capability for the arrival model actually used in the experiments (marked
Poisson arrivals):

* **Exact means** via classical M[K]/G/1 priority mean-value analysis
  (:mod:`repro.models.mg1`), parameterised by the first two moments of the
  per-class PH service times produced by the task-level or wave-level models.
* **Full distributions / tails** via a fast event-driven simulation of the
  MMAP[K]/PH[K]/1 queue, supporting non-preemptive priority (DiAS, NP),
  preemptive-restart (the paper's eviction baseline) and preemptive-resume.

The combination answers the same questions the paper's Fig. 5 answers: how do
mean/tail response times of each class move as the drop ratio changes?
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.models.mg1 import (
    ServiceMoments,
    nonpreemptive_priority_response_times,
    preemptive_resume_response_times,
    total_utilisation,
)
from repro.models.ph import PhaseType

#: Supported scheduling disciplines for the model-level queue.
DISCIPLINES = ("nonpreemptive", "preemptive_resume", "preemptive_restart")


@dataclass
class PriorityClassInput:
    """One priority class of the queueing model.

    ``service`` is the PH distribution of this class's job processing time
    (typically produced by the task-level or wave-level model at the class's
    drop ratio and sprint setting).
    """

    priority: int
    arrival_rate: float
    service: PhaseType

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")

    @property
    def moments(self) -> ServiceMoments:
        return ServiceMoments(
            mean=self.service.mean, second_moment=self.service.second_moment
        )

    @property
    def load(self) -> float:
        return self.arrival_rate * self.service.mean


class PriorityQueueModel:
    """Multi-priority single-server queue with Poisson arrivals and PH service."""

    def __init__(self, classes: Sequence[PriorityClassInput]) -> None:
        if not classes:
            raise ValueError("at least one priority class is required")
        priorities = [c.priority for c in classes]
        if len(set(priorities)) != len(priorities):
            raise ValueError("priority values must be unique")
        self.classes = {c.priority: c for c in classes}

    # ------------------------------------------------------------ analytics
    def _rates(self) -> Dict[int, float]:
        return {p: c.arrival_rate for p, c in self.classes.items()}

    def _moments(self) -> Dict[int, ServiceMoments]:
        return {p: c.moments for p, c in self.classes.items()}

    def utilisation(self) -> float:
        """Offered load ``ρ``."""
        return total_utilisation(self._rates(), self._moments())

    def mean_response_times(self, discipline: str = "nonpreemptive") -> Dict[int, float]:
        """Exact mean response time per class (Poisson arrivals).

        ``preemptive_restart`` has no simple closed form; the preemptive-resume
        result is returned as an optimistic lower bound for it (the restart
        discipline wastes strictly more work), which is how the deflator uses
        it — any drop ratio that beats the resume bound certainly beats the
        restart baseline.
        """
        if discipline not in DISCIPLINES:
            raise ValueError(f"unknown discipline {discipline!r}")
        if discipline == "nonpreemptive":
            return nonpreemptive_priority_response_times(self._rates(), self._moments())
        return preemptive_resume_response_times(self._rates(), self._moments())

    def mean_waiting_times(self, discipline: str = "nonpreemptive") -> Dict[int, float]:
        responses = self.mean_response_times(discipline)
        return {p: responses[p] - self.classes[p].service.mean for p in responses}

    # ------------------------------------------------------------ simulation
    def simulate(
        self,
        horizon: float,
        rng: Optional[np.random.Generator] = None,
        discipline: str = "nonpreemptive",
        warmup_fraction: float = 0.1,
    ) -> Dict[int, List[float]]:
        """Simulate the queue and return per-class response-time samples.

        Jobs arriving during the warm-up window are excluded from the returned
        samples so steady-state estimates are not biased by the empty start.
        """
        if discipline not in DISCIPLINES:
            raise ValueError(f"unknown discipline {discipline!r}")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)

        # Pre-sample arrivals per class and merge.
        arrivals: List[tuple] = []
        for priority, cls in self.classes.items():
            if cls.arrival_rate <= 0:
                continue
            t = 0.0
            while True:
                t += rng.exponential(1.0 / cls.arrival_rate)
                if t >= horizon:
                    break
                arrivals.append((t, priority))
        arrivals.sort()

        warmup = horizon * warmup_fraction
        samples: Dict[int, List[float]] = {p: [] for p in self.classes}

        # Queue state: one FIFO list per priority; the in-service job.
        queues: Dict[int, List[dict]] = {p: [] for p in self.classes}
        in_service: Optional[dict] = None
        service_end = 0.0
        now = 0.0
        index = 0

        def sample_service(priority: int) -> float:
            return float(self.classes[priority].service.sample(rng, 1)[0])

        def pick_next() -> Optional[dict]:
            for priority in sorted(queues, reverse=True):
                if queues[priority]:
                    return queues[priority].pop(0)
            return None

        while index < len(arrivals) or in_service is not None or any(queues.values()):
            next_arrival = arrivals[index][0] if index < len(arrivals) else float("inf")
            next_completion = service_end if in_service is not None else float("inf")
            if next_arrival == float("inf") and next_completion == float("inf"):
                break
            if next_arrival <= next_completion:
                now = next_arrival
                _, priority = arrivals[index]
                index += 1
                job = {
                    "priority": priority,
                    "arrival": now,
                    "remaining": sample_service(priority),
                    "original": None,
                }
                job["original"] = job["remaining"]
                if in_service is None:
                    in_service = job
                    service_end = now + job["remaining"]
                elif (
                    discipline in ("preemptive_resume", "preemptive_restart")
                    and priority > in_service["priority"]
                ):
                    # Preempt the job in service.
                    if discipline == "preemptive_resume":
                        in_service["remaining"] = service_end - now
                    else:
                        in_service["remaining"] = in_service["original"]
                    queues[in_service["priority"]].insert(0, in_service)
                    in_service = job
                    service_end = now + job["remaining"]
                else:
                    queues[priority].append(job)
            else:
                now = next_completion
                finished = in_service
                in_service = None
                if finished is not None and finished["arrival"] >= warmup:
                    samples[finished["priority"]].append(now - finished["arrival"])
                nxt = pick_next()
                if nxt is not None:
                    in_service = nxt
                    service_end = now + nxt["remaining"]
        return samples

    def simulated_summary(
        self,
        horizon: float,
        rng: Optional[np.random.Generator] = None,
        discipline: str = "nonpreemptive",
        percentile_q: float = 95.0,
    ) -> Dict[int, Dict[str, float]]:
        """Mean and tail response time per class from one simulation run."""
        samples = self.simulate(horizon, rng=rng, discipline=discipline)
        summary: Dict[int, Dict[str, float]] = {}
        for priority, values in samples.items():
            if values:
                ordered = sorted(values)
                idx = min(len(ordered) - 1, int(round((percentile_q / 100.0) * (len(ordered) - 1))))
                summary[priority] = {
                    "mean": sum(values) / len(values),
                    "tail": ordered[idx],
                    "count": float(len(values)),
                }
            else:
                summary[priority] = {"mean": float("nan"), "tail": float("nan"), "count": 0.0}
        return summary
