"""Task-level model of the job processing time (§4.1, Eq. 1).

The job processing time is modelled as the absorption time of a Markov chain
whose phase tracks the current execution step:

* ``O`` — the initial setup (overhead) stage,
* ``M_t`` — ``t`` map tasks remain, ``1 ≤ t ≤ N̄m``,
* ``S`` — the intermediate shuffle stage,
* ``R_u`` — ``u`` reduce tasks remain, ``1 ≤ u ≤ N̄r``,

with transition rates given by Eq. 1 of the paper: map/reduce tasks complete
at rate ``min(t, C)·µ`` (at most ``C`` slots busy), the setup completes at
rate ``µo`` and branches to ``M_t̄`` with probability ``pm(t)`` (the job's
*effective* task count after early dropping, ``t̄ = ⌈t(1 − θm)⌉``), and the
shuffle branches to ``R_ū`` analogously.

The resulting pair ``(φ, F)`` is a PH representation of the job processing
time with ``N̄m + N̄r + 2`` phases; all PH machinery (moments, CDF, closure)
then applies directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.engine.job import effective_task_count
from repro.models.ph import PhaseType


def _normalise_distribution(dist: Mapping[int, float]) -> Dict[int, float]:
    """Validate and normalise a task-count distribution ``{count: probability}``."""
    if not dist:
        raise ValueError("task-count distribution must not be empty")
    cleaned: Dict[int, float] = {}
    for count, prob in dist.items():
        if count < 0:
            raise ValueError("task counts must be non-negative")
        if prob < 0:
            raise ValueError("probabilities must be non-negative")
        if prob > 0:
            cleaned[int(count)] = float(prob)
    total = sum(cleaned.values())
    if total <= 0:
        raise ValueError("task-count distribution must have positive total mass")
    return {count: prob / total for count, prob in cleaned.items()}


@dataclass
class TaskLevelModel:
    """PH model of the processing time of one priority class (Eq. 1).

    Parameters
    ----------
    slots:
        Number of computing slots ``C``.
    map_task_distribution:
        ``pm(t)`` — probability that a job has ``t`` map tasks.
    reduce_task_distribution:
        ``pr(u)`` — probability that a job has ``u`` reduce tasks.
    map_rate, reduce_rate:
        Per-task service rates ``µm`` and ``µr`` (1 / mean task time).
    setup_rate:
        ``µo`` — rate of the setup/overhead stage; ``None`` or ``inf`` removes
        the setup stage.
    shuffle_rate:
        ``µs`` — rate of the shuffle stage; ``None`` or ``inf`` removes it.
    map_drop_ratio, reduce_drop_ratio:
        ``θm`` and ``θr``.
    """

    slots: int
    map_task_distribution: Mapping[int, float]
    reduce_task_distribution: Mapping[int, float]
    map_rate: float
    reduce_rate: float
    setup_rate: Optional[float] = None
    shuffle_rate: Optional[float] = None
    map_drop_ratio: float = 0.0
    reduce_drop_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError("slots must be positive")
        if self.map_rate <= 0 or self.reduce_rate <= 0:
            raise ValueError("task rates must be positive")
        if self.setup_rate is not None and self.setup_rate <= 0:
            raise ValueError("setup rate must be positive (or None)")
        if self.shuffle_rate is not None and self.shuffle_rate <= 0:
            raise ValueError("shuffle rate must be positive (or None)")
        if not 0.0 <= self.map_drop_ratio < 1.0:
            raise ValueError("map drop ratio must be in [0, 1)")
        if not 0.0 <= self.reduce_drop_ratio < 1.0:
            raise ValueError("reduce drop ratio must be in [0, 1)")
        self.map_task_distribution = _normalise_distribution(self.map_task_distribution)
        self.reduce_task_distribution = _normalise_distribution(self.reduce_task_distribution)

    # -------------------------------------------------------------- helpers
    def effective_map_distribution(self) -> Dict[int, float]:
        """Distribution of ``t̄ = ⌈t(1 − θm)⌉`` induced by ``pm`` and dropping."""
        return self._effective_distribution(self.map_task_distribution, self.map_drop_ratio)

    def effective_reduce_distribution(self) -> Dict[int, float]:
        """Distribution of ``ū = ⌈u(1 − θr)⌉`` induced by ``pr`` and dropping."""
        return self._effective_distribution(self.reduce_task_distribution, self.reduce_drop_ratio)

    @staticmethod
    def _effective_distribution(dist: Mapping[int, float], drop_ratio: float) -> Dict[int, float]:
        effective: Dict[int, float] = {}
        for count, prob in dist.items():
            kept = effective_task_count(count, drop_ratio)
            effective[kept] = effective.get(kept, 0.0) + prob
        return effective

    @property
    def max_effective_map_tasks(self) -> int:
        return max(self.effective_map_distribution())

    @property
    def max_effective_reduce_tasks(self) -> int:
        return max(self.effective_reduce_distribution())

    # ------------------------------------------------------------ generator
    def phase_names(self) -> Sequence[str]:
        """Ordered phase labels: ``O, M_N̄m … M_1, S, R_N̄r … R_1``."""
        names = ["O"]
        names += [f"M{t}" for t in range(self.max_effective_map_tasks, 0, -1)]
        names += ["S"]
        names += [f"R{u}" for u in range(self.max_effective_reduce_tasks, 0, -1)]
        return names

    def build(self) -> PhaseType:
        """Construct the PH representation ``(φ, F)`` of the processing time."""
        map_dist = self.effective_map_distribution()
        reduce_dist = self.effective_reduce_distribution()
        n_map = max(map_dist)
        n_reduce = max(reduce_dist)

        # Phase indices.
        names = ["O"] + [f"M{t}" for t in range(n_map, 0, -1)] + ["S"] + [
            f"R{u}" for u in range(n_reduce, 0, -1)
        ]
        index = {name: i for i, name in enumerate(names)}
        size = len(names)
        F = np.zeros((size, size))

        setup_rate = self.setup_rate if self.setup_rate is not None else math.inf
        shuffle_rate = self.shuffle_rate if self.shuffle_rate is not None else math.inf

        def add_rate(src: str, dst: Optional[str], rate: float) -> None:
            i = index[src]
            F[i, i] -= rate
            if dst is not None:
                F[i, index[dst]] += rate

        # Setup stage O -> M_t̄ with probability pm(t̄) at rate µo.
        if math.isinf(setup_rate):
            # No setup stage: start directly in the map stage.  We emulate this
            # by a very fast setup phase so the phase-space structure (and the
            # paper's initial vector φ = [1, 0, …]) is preserved.
            setup_rate = 1e9
        for kept, prob in map_dist.items():
            if kept > 0:
                add_rate("O", f"M{kept}", setup_rate * prob)
            else:
                add_rate("O", "S", setup_rate * prob)

        # Map stage countdown.
        for t in range(n_map, 0, -1):
            rate = min(t, self.slots) * self.map_rate
            dst = f"M{t - 1}" if t > 1 else "S"
            add_rate(f"M{t}", dst, rate)

        # Shuffle stage S -> R_ū with probability pr(ū) at rate µs.
        if math.isinf(shuffle_rate):
            shuffle_rate = 1e9
        exit_prob = 0.0
        for kept, prob in reduce_dist.items():
            if kept > 0:
                add_rate("S", f"R{kept}", shuffle_rate * prob)
            else:
                exit_prob += prob
        if exit_prob > 0:
            # Absorption straight after shuffle (job with all reduce tasks dropped).
            add_rate("S", None, shuffle_rate * exit_prob)

        # Reduce stage countdown; R_1 -> absorption (R_0, job completion).
        for u in range(n_reduce, 0, -1):
            rate = min(u, self.slots) * self.reduce_rate
            dst = f"R{u - 1}" if u > 1 else None
            add_rate(f"R{u}", dst, rate)

        phi = np.zeros(size)
        phi[index["O"]] = 1.0
        return PhaseType(phi, F)

    # -------------------------------------------------------------- metrics
    def mean_processing_time(self) -> float:
        """Mean job processing time under the configured drop ratios."""
        return self.build().mean

    def processing_time_scv(self) -> float:
        return self.build().scv

    def with_drop_ratios(
        self, map_drop_ratio: float, reduce_drop_ratio: Optional[float] = None
    ) -> "TaskLevelModel":
        """Copy of this model with different drop ratios."""
        return TaskLevelModel(
            slots=self.slots,
            map_task_distribution=dict(self.map_task_distribution),
            reduce_task_distribution=dict(self.reduce_task_distribution),
            map_rate=self.map_rate,
            reduce_rate=self.reduce_rate,
            setup_rate=self.setup_rate,
            shuffle_rate=self.shuffle_rate,
            map_drop_ratio=map_drop_ratio,
            reduce_drop_ratio=(
                self.reduce_drop_ratio if reduce_drop_ratio is None else reduce_drop_ratio
            ),
        )

    @classmethod
    def from_profile(
        cls,
        profile,
        slots: int,
        map_drop_ratio: float = 0.0,
        reduce_drop_ratio: float = 0.0,
    ) -> "TaskLevelModel":
        """Build a task-level model from a :class:`JobClassProfile`.

        The setup rate is taken at the requested drop ratio, matching the
        paper's linear interpolation of the overhead between the profiled
        no-drop and max-drop operating points.
        """
        setup_time = profile.setup_time(min(map_drop_ratio, 0.9))
        return cls(
            slots=slots,
            map_task_distribution={profile.partitions * profile.num_stages: 1.0},
            reduce_task_distribution={max(profile.reduce_tasks * profile.num_stages, 1): 1.0},
            map_rate=1.0 / profile.mean_map_task_time(),
            reduce_rate=1.0 / profile.reduce_time,
            setup_rate=(1.0 / setup_time) if setup_time > 0 else None,
            shuffle_rate=(1.0 / profile.shuffle_time) if profile.shuffle_time > 0 else None,
            map_drop_ratio=map_drop_ratio,
            reduce_drop_ratio=reduce_drop_ratio,
        )
