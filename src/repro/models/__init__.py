"""Stochastic models guiding DiAS (Section 4 of the paper).

* :mod:`repro.models.ph` — Phase-Type (PH) distributions: construction,
  moments, closure operations (convolution, mixture), two-moment fitting.
* :mod:`repro.models.mmap` — Marked Markovian Arrival Processes (MMAP[K]);
  the marked Poisson process used in the experiments is a special case.
* :mod:`repro.models.task_level` — the task-level PH model of §4.1 (Eq. 1).
* :mod:`repro.models.wave_level` — the wave-level PH model of §4.2.
* :mod:`repro.models.mg1` — M/G/1 and M[K]/G/1 priority mean-value formulas.
* :mod:`repro.models.qbd` — matrix-geometric M/PH/1 solver (cross-validation).
* :mod:`repro.models.priority_queue` — the response-time model used by the
  deflator: priority MVA on PH service moments plus a fast queue simulator
  for latency tails.
* :mod:`repro.models.regression` — the linear interpolation/regression used to
  parameterise overheads and task times from profiling runs (§4.3).
* :mod:`repro.models.accuracy` — accuracy-loss curves vs drop ratio (Fig. 6).
* :mod:`repro.models.sprinting` — effective sprinting-rate model.
"""

from repro.models.accuracy import AccuracyModel, compose_stage_drop_ratios
from repro.models.mg1 import (
    mg1_mean_waiting_time,
    nonpreemptive_priority_response_times,
    preemptive_resume_response_times,
)
from repro.models.mmap import MarkedMAP
from repro.models.ph import PhaseType
from repro.models.priority_queue import PriorityQueueModel, PriorityClassInput
from repro.models.qbd import MPH1Queue
from repro.models.regression import LinearInterpolator, LinearRegression
from repro.models.sprinting import SprintingRateModel
from repro.models.task_level import TaskLevelModel
from repro.models.wave_level import WaveLevelModel

__all__ = [
    "AccuracyModel",
    "compose_stage_drop_ratios",
    "mg1_mean_waiting_time",
    "nonpreemptive_priority_response_times",
    "preemptive_resume_response_times",
    "MarkedMAP",
    "PhaseType",
    "PriorityQueueModel",
    "PriorityClassInput",
    "MPH1Queue",
    "LinearInterpolator",
    "LinearRegression",
    "SprintingRateModel",
    "TaskLevelModel",
    "WaveLevelModel",
]
