"""Lightweight regression and interpolation helpers.

The paper keeps profiling minimal: overhead (setup) times are collected at two
operating points only — no dropping and 90 % dropping — and linearly
interpolated in between (§4.3); task execution times are related to input
sizes with simple linear regressions (§3, §5.3).  These helpers implement
exactly those two tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class LinearInterpolator:
    """Piecewise-linear interpolation through a set of ``(x, y)`` points.

    Values outside the observed ``x`` range are clamped to the boundary
    segments (constant extrapolation), mirroring how the paper treats the two
    profiled overhead operating points as the admissible range.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two points to interpolate")
        ordered = sorted(points, key=lambda p: p[0])
        xs = [float(p[0]) for p in ordered]
        ys = [float(p[1]) for p in ordered]
        if len(set(xs)) != len(xs):
            raise ValueError("x values must be distinct")
        self._xs = xs
        self._ys = ys

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._xs, self._ys))

    def __call__(self, x: float) -> float:
        xs, ys = self._xs, self._ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        for i in range(1, len(xs)):
            if x <= xs[i]:
                frac = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
                return ys[i - 1] * (1.0 - frac) + ys[i] * frac
        return ys[-1]

    @classmethod
    def two_point(cls, x0: float, y0: float, x1: float, y1: float) -> "LinearInterpolator":
        """The two-point interpolator used for overhead-vs-drop-ratio (§4.3)."""
        return cls([(x0, y0), (x1, y1)])


@dataclass
class LinearRegression:
    """Ordinary least-squares fit of ``y ≈ intercept + slope · x``."""

    intercept: float
    slope: float
    r_squared: float

    @classmethod
    def fit(cls, xs: Sequence[float], ys: Sequence[float]) -> "LinearRegression":
        if len(xs) != len(ys):
            raise ValueError("x and y must have the same length")
        if len(xs) < 2:
            raise ValueError("need at least two observations to fit a line")
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        x_mean = x.mean()
        y_mean = y.mean()
        ss_xx = float(((x - x_mean) ** 2).sum())
        if ss_xx == 0:
            raise ValueError("x values must not all be identical")
        slope = float(((x - x_mean) * (y - y_mean)).sum() / ss_xx)
        intercept = float(y_mean - slope * x_mean)
        predictions = intercept + slope * x
        ss_res = float(((y - predictions) ** 2).sum())
        ss_tot = float(((y - y_mean) ** 2).sum())
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return cls(intercept=intercept, slope=slope, r_squared=r_squared)

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x

    def predict_many(self, xs: Sequence[float]) -> List[float]:
        return [self.predict(x) for x in xs]
