"""Phase-Type (PH) distributions.

A PH distribution is the distribution of the time to absorption of a finite
continuous-time Markov chain with one absorbing state.  It is represented by
the pair ``(alpha, T)`` where ``alpha`` is the initial probability vector over
the transient phases and ``T`` is the sub-generator over those phases.  The
exit-rate vector is ``t = -T·1``.

PH distributions are the paper's modelling workhorse (§4): they are closed
under convolution and mixture, which is exactly what is needed to compose the
setup, map-wave, shuffle and reduce-wave stages of a job into a single job
processing-time distribution.

This module provides construction, moments, density/CDF evaluation, sampling,
the closure operations, scaling, and simple two-moment fitting (exponential /
Erlang / hyper-exponential) used to turn profiled task-time means and SCVs
into PH components.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm


class PhaseType:
    """A continuous Phase-Type distribution ``PH(alpha, T)``."""

    def __init__(self, alpha: Sequence[float], T: Sequence[Sequence[float]]) -> None:
        alpha_arr = np.asarray(alpha, dtype=float).reshape(-1)
        T_arr = np.asarray(T, dtype=float)
        if T_arr.ndim != 2 or T_arr.shape[0] != T_arr.shape[1]:
            raise ValueError("T must be a square matrix")
        if alpha_arr.shape[0] != T_arr.shape[0]:
            raise ValueError("alpha and T dimensions do not match")
        self._validate(alpha_arr, T_arr)
        self.alpha = alpha_arr
        self.T = T_arr

    @staticmethod
    def _validate(alpha: np.ndarray, T: np.ndarray, tol: float = 1e-9) -> None:
        if np.any(alpha < -tol):
            raise ValueError("alpha must be non-negative")
        if not math.isclose(float(alpha.sum()), 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"alpha must sum to 1, got {float(alpha.sum())!r}")
        off_diag = T - np.diag(np.diag(T))
        if np.any(off_diag < -tol):
            raise ValueError("off-diagonal entries of T must be non-negative")
        if np.any(np.diag(T) > tol):
            raise ValueError("diagonal entries of T must be non-positive")
        row_sums = T.sum(axis=1)
        if np.any(row_sums > tol):
            raise ValueError("row sums of T must be non-positive (exit rates non-negative)")

    # ------------------------------------------------------------ properties
    @property
    def order(self) -> int:
        """Number of transient phases."""
        return self.T.shape[0]

    @property
    def exit_rates(self) -> np.ndarray:
        """Exit-rate vector ``t = -T·1``."""
        return -self.T.sum(axis=1)

    # --------------------------------------------------------------- moments
    def moment(self, k: int) -> float:
        """Raw moment ``E[X^k] = k! · alpha · (−T)^{-k} · 1``."""
        if k < 0:
            raise ValueError("moment order must be non-negative")
        if k == 0:
            return 1.0
        inv = np.linalg.inv(-self.T)
        acc = np.identity(self.order)
        for _ in range(k):
            acc = acc @ inv
        ones = np.ones(self.order)
        return float(math.factorial(k) * self.alpha @ acc @ ones)

    @property
    def mean(self) -> float:
        return self.moment(1)

    @property
    def second_moment(self) -> float:
        return self.moment(2)

    @property
    def variance(self) -> float:
        m1 = self.mean
        return self.moment(2) - m1 * m1

    @property
    def scv(self) -> float:
        """Squared coefficient of variation."""
        m1 = self.mean
        if m1 == 0:
            return float("nan")
        return self.variance / (m1 * m1)

    # ------------------------------------------------------------ evaluation
    def cdf(self, x: float) -> float:
        """``P(X ≤ x)``."""
        if x < 0:
            return 0.0
        ones = np.ones(self.order)
        return float(1.0 - self.alpha @ expm(self.T * x) @ ones)

    def sf(self, x: float) -> float:
        """Survival function ``P(X > x)``."""
        return 1.0 - self.cdf(x)

    def pdf(self, x: float) -> float:
        """Density ``f(x) = alpha · exp(Tx) · t``."""
        if x < 0:
            return 0.0
        return float(self.alpha @ expm(self.T * x) @ self.exit_rates)

    def quantile(self, q: float, tol: float = 1e-8, max_iter: int = 200) -> float:
        """Numerical inverse CDF via bisection."""
        if not 0.0 <= q < 1.0:
            raise ValueError("q must be in [0, 1)")
        if q == 0.0:
            return 0.0
        hi = max(self.mean, 1e-9)
        while self.cdf(hi) < q and hi < 1e12:
            hi *= 2.0
        lo = 0.0
        for _ in range(max_iter):
            mid = (lo + hi) / 2.0
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol * max(1.0, hi):
                break
        return (lo + hi) / 2.0

    # -------------------------------------------------------------- sampling
    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` samples by simulating the underlying Markov chain."""
        if n < 0:
            raise ValueError("cannot draw a negative number of samples")
        exit_rates = self.exit_rates
        total_rates = -np.diag(self.T)
        samples = np.empty(n)
        for i in range(n):
            time = 0.0
            phase = int(rng.choice(self.order, p=self.alpha))
            while True:
                rate = total_rates[phase]
                if rate <= 0:
                    break
                time += rng.exponential(1.0 / rate)
                # Decide whether we absorb or move to another phase.
                probs = np.maximum(self.T[phase].copy(), 0.0)
                probs[phase] = 0.0
                absorb_prob = exit_rates[phase] / rate
                if rng.uniform() < absorb_prob:
                    break
                transition_probs = probs / probs.sum() if probs.sum() > 0 else None
                if transition_probs is None:
                    break
                phase = int(rng.choice(self.order, p=transition_probs))
            samples[i] = time
        return samples

    # ------------------------------------------------------------- operations
    def scaled(self, factor: float) -> "PhaseType":
        """Distribution of ``factor · X`` (rates divided by ``factor``)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return PhaseType(self.alpha, self.T / factor)

    def convolve(self, other: "PhaseType") -> "PhaseType":
        """Distribution of the sum of two independent PH random variables."""
        n, m = self.order, other.order
        T = np.zeros((n + m, n + m))
        T[:n, :n] = self.T
        T[n:, n:] = other.T
        T[:n, n:] = np.outer(self.exit_rates, other.alpha)
        alpha = np.concatenate([self.alpha, np.zeros(m)])
        return PhaseType(alpha, T)

    @staticmethod
    def mixture(weights: Sequence[float], components: Sequence["PhaseType"]) -> "PhaseType":
        """Probabilistic mixture of PH distributions."""
        weights_arr = np.asarray(weights, dtype=float)
        if len(weights_arr) != len(components):
            raise ValueError("weights and components must have the same length")
        if np.any(weights_arr < 0) or not math.isclose(weights_arr.sum(), 1.0, abs_tol=1e-9):
            raise ValueError("weights must be non-negative and sum to 1")
        total_order = sum(c.order for c in components)
        T = np.zeros((total_order, total_order))
        alpha = np.zeros(total_order)
        offset = 0
        for weight, comp in zip(weights_arr, components):
            T[offset : offset + comp.order, offset : offset + comp.order] = comp.T
            alpha[offset : offset + comp.order] = weight * comp.alpha
            offset += comp.order
        return PhaseType(alpha, T)

    def convolve_many(self, others: Sequence["PhaseType"]) -> "PhaseType":
        """Convolve with a sequence of further PH distributions."""
        result = self
        for other in others:
            result = result.convolve(other)
        return result

    # ------------------------------------------------------------- factories
    @staticmethod
    def exponential(rate: float) -> "PhaseType":
        """Exponential distribution with the given rate."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return PhaseType([1.0], [[-rate]])

    @staticmethod
    def erlang(k: int, rate: float) -> "PhaseType":
        """Erlang-k distribution, each phase with the given rate."""
        if k <= 0:
            raise ValueError("k must be positive")
        if rate <= 0:
            raise ValueError("rate must be positive")
        T = np.zeros((k, k))
        for i in range(k):
            T[i, i] = -rate
            if i + 1 < k:
                T[i, i + 1] = rate
        alpha = np.zeros(k)
        alpha[0] = 1.0
        return PhaseType(alpha, T)

    @staticmethod
    def hyperexponential(probabilities: Sequence[float], rates: Sequence[float]) -> "PhaseType":
        """Hyper-exponential mixture of exponentials."""
        probs = np.asarray(probabilities, dtype=float)
        rates_arr = np.asarray(rates, dtype=float)
        if probs.shape != rates_arr.shape:
            raise ValueError("probabilities and rates must have the same length")
        if np.any(rates_arr <= 0):
            raise ValueError("rates must be positive")
        if np.any(probs < 0) or not math.isclose(probs.sum(), 1.0, abs_tol=1e-9):
            raise ValueError("probabilities must be non-negative and sum to 1")
        T = np.diag(-rates_arr)
        return PhaseType(probs, T)

    @staticmethod
    def deterministic_approx(value: float, phases: int = 50) -> "PhaseType":
        """Erlang approximation of a deterministic duration."""
        if value <= 0:
            raise ValueError("value must be positive")
        return PhaseType.erlang(phases, phases / value)

    @staticmethod
    def fit_mean_scv(mean: float, scv: float) -> "PhaseType":
        """Two-moment PH fit.

        * ``scv == 1`` → exponential;
        * ``scv < 1`` → mixture of Erlang-(k−1) and Erlang-k with a common rate
          (the standard two-moment matching of Tijms);
        * ``scv > 1`` → two-phase hyper-exponential with balanced means.
        """
        if mean <= 0:
            raise ValueError("mean must be positive")
        if scv < 0:
            raise ValueError("scv must be non-negative")
        if scv == 0:
            return PhaseType.deterministic_approx(mean)
        if math.isclose(scv, 1.0, rel_tol=1e-9):
            return PhaseType.exponential(1.0 / mean)
        if scv < 1.0:
            k = max(2, math.ceil(1.0 / scv))
            # Mixture of Erlang-(k-1) and Erlang-k with common rate.
            p = (
                k * scv
                - math.sqrt(k * (1.0 + scv) - k * k * scv)
            ) / (1.0 + scv) if k * scv <= 1 + scv else 0.0
            p = min(max(p, 0.0), 1.0)
            rate = (k - p) / mean
            erl_km1 = PhaseType.erlang(k - 1, rate)
            erl_k = PhaseType.erlang(k, rate)
            return PhaseType.mixture([p, 1.0 - p], [erl_km1, erl_k])
        # scv > 1: balanced-means H2.
        p1 = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        p2 = 1.0 - p1
        rate1 = 2.0 * p1 / mean
        rate2 = 2.0 * p2 / mean
        return PhaseType.hyperexponential([p1, p2], [rate1, rate2])

    # --------------------------------------------------------------- dunders
    def __repr__(self) -> str:
        return f"PhaseType(order={self.order}, mean={self.mean:.4g}, scv={self.scv:.4g})"
