"""Marked Markovian Arrival Processes (MMAP[K]).

The queueing model in §4 assumes arrivals follow an MMAP[K] with one stream
per priority class, parameterised by ``K + 1`` matrices ``(D0, D1, …, DK)``
where ``Dk`` holds the transition rates that generate class-``k`` arrivals and
``D = Σ Dk`` is the generator of the underlying Markov chain.  The simplest
non-trivial case — the one actually used in the paper's experiments — is the
*marked Poisson process*, where the underlying chain has a single state and
``Dk = λk``.

This module implements the MMAP[K] representation, validation, per-class
rates, the marked-Poisson factory, superposition of independent MMAPs, and
sampling of marked arrival sequences (used by the model-level queue simulator).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


class MarkedMAP:
    """An MMAP[K] given by matrices ``(D0, D1, …, DK)``."""

    def __init__(self, D0: Sequence[Sequence[float]], marked: Sequence[Sequence[Sequence[float]]]) -> None:
        D0_arr = np.asarray(D0, dtype=float)
        marked_arrs = [np.asarray(Dk, dtype=float) for Dk in marked]
        if D0_arr.ndim != 2 or D0_arr.shape[0] != D0_arr.shape[1]:
            raise ValueError("D0 must be square")
        if not marked_arrs:
            raise ValueError("at least one marked matrix is required")
        for Dk in marked_arrs:
            if Dk.shape != D0_arr.shape:
                raise ValueError("all Dk must have the same shape as D0")
            if np.any(Dk < -1e-12):
                raise ValueError("marked matrices must be non-negative")
        self.D0 = D0_arr
        self.marked = marked_arrs
        self._validate()

    def _validate(self, tol: float = 1e-8) -> None:
        D = self.generator
        row_sums = D.sum(axis=1)
        if np.any(np.abs(row_sums) > tol):
            raise ValueError("D = D0 + sum(Dk) must be a generator (zero row sums)")
        off_diag = self.D0 - np.diag(np.diag(self.D0))
        if np.any(off_diag < -tol):
            raise ValueError("off-diagonal entries of D0 must be non-negative")

    # ------------------------------------------------------------ properties
    @property
    def num_classes(self) -> int:
        return len(self.marked)

    @property
    def order(self) -> int:
        """Number of states of the underlying Markov chain (``ma``)."""
        return self.D0.shape[0]

    @property
    def generator(self) -> np.ndarray:
        """``D = D0 + Σ Dk``."""
        return self.D0 + sum(self.marked)

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution of the underlying chain."""
        D = self.generator
        n = self.order
        A = np.vstack([D.T, np.ones((1, n))])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(A, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def arrival_rate(self, klass: int) -> float:
        """Mean arrival rate of class ``klass`` (0-indexed into the marked list)."""
        pi = self.stationary_distribution()
        ones = np.ones(self.order)
        return float(pi @ self.marked[klass] @ ones)

    def total_arrival_rate(self) -> float:
        return sum(self.arrival_rate(k) for k in range(self.num_classes))

    # ------------------------------------------------------------- factories
    @staticmethod
    def marked_poisson(rates: Sequence[float]) -> "MarkedMAP":
        """Marked Poisson arrivals with one rate per class."""
        rates_arr = [float(r) for r in rates]
        if not rates_arr or any(r < 0 for r in rates_arr):
            raise ValueError("rates must be non-negative and non-empty")
        total = sum(rates_arr)
        D0 = [[-total]]
        marked = [[[r]] for r in rates_arr]
        return MarkedMAP(D0, marked)

    @staticmethod
    def superpose(a: "MarkedMAP", b: "MarkedMAP") -> "MarkedMAP":
        """Superposition of two independent MMAPs with the same class count."""
        if a.num_classes != b.num_classes:
            raise ValueError("superposed MMAPs must have the same number of classes")
        eye_a = np.identity(a.order)
        eye_b = np.identity(b.order)
        D0 = np.kron(a.D0, eye_b) + np.kron(eye_a, b.D0)
        marked = [
            np.kron(a.marked[k], eye_b) + np.kron(eye_a, b.marked[k])
            for k in range(a.num_classes)
        ]
        return MarkedMAP(D0, marked)

    # -------------------------------------------------------------- sampling
    def sample_arrivals(
        self, rng: np.random.Generator, horizon: float
    ) -> List[Tuple[float, int]]:
        """Simulate marked arrivals in ``[0, horizon)``.

        Returns a list of ``(time, class_index)`` tuples in time order.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        pi = self.stationary_distribution()
        state = int(rng.choice(self.order, p=pi))
        time = 0.0
        arrivals: List[Tuple[float, int]] = []
        # The diagonal of D0 already accounts for every event (hidden state
        # changes and marked arrivals), because D = D0 + Σ Dk has zero row sums.
        total_exit = -np.diag(self.D0)
        while True:
            rate = float(total_exit[state])
            if rate <= 0:
                break
            time += rng.exponential(1.0 / rate)
            if time >= horizon:
                break
            # Choose which transition fired: hidden (D0 off-diagonal) or marked.
            weights = []
            outcomes = []
            for next_state in range(self.order):
                if next_state != state and self.D0[state, next_state] > 0:
                    weights.append(self.D0[state, next_state])
                    outcomes.append((None, next_state))
            for klass, Dk in enumerate(self.marked):
                for next_state in range(self.order):
                    if Dk[state, next_state] > 0:
                        weights.append(Dk[state, next_state])
                        outcomes.append((klass, next_state))
            weights_arr = np.asarray(weights)
            idx = int(rng.choice(len(outcomes), p=weights_arr / weights_arr.sum()))
            klass, next_state = outcomes[idx]
            if klass is not None:
                arrivals.append((time, klass))
            state = next_state
        return arrivals
