"""Metric collection for priority-scheduling simulations.

The collector records one :class:`JobRecord` per completed job and exposes the
summary statistics the paper reports:

* mean and tail (95th percentile) response time per priority class,
* mean queueing and execution time per class (Table 2),
* resource waste — machine time spent re-processing evicted jobs as a
  percentage of total processing time (§5.1),
* total energy consumed (Fig. 11c),
* accuracy loss per class (from the applied drop ratios).

Performance notes
-----------------
Summary queries are served from caches: job records are partitioned per
priority class once, and each metric's value list is sorted once, with both
caches invalidated whenever a new job is recorded.  Repeated
``mean``/``tail``/``class_metrics`` queries therefore cost one sort per
(class, metric) per collector *generation* instead of one sort per call.

For million-job runs the collector also supports an opt-in **streaming mode**
(``MetricsCollector(streaming=True)``) that retains no per-job records:
means/variances are tracked online (Welford) and percentiles are estimated
with the P² algorithm (Jain & Chlamtac, 1985) in O(1) memory per quantile.
Streaming summaries are approximations of the tails (exact for the mean,
count, max and totals); record-level accessors raise in streaming mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence."""
    if not ordered:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {q!r}")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Implemented locally (rather than via numpy) so metric summaries stay
    dependency-light and behave identically on lists and tuples.  Raises
    ``ValueError`` on empty input.  Sorts its input; callers holding an
    already-sorted sequence should go through the collector's cached
    summaries instead of re-sorting per call.
    """
    if not values:
        raise ValueError("cannot compute a percentile of an empty sequence")
    return _percentile_of_sorted(sorted(values), q)


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Tracks five markers whose heights approximate the ``p``-quantile without
    retaining observations.  Exact for the first five samples; afterwards the
    middle marker is a piecewise-parabolic estimate of the quantile.
    """

    __slots__ = ("p", "_count", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p!r}")
        self.p = p
        self._count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        value = float(value)
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # Locate the marker cell containing the observation.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        increments = self._increments
        for i in range(5):
            desired[i] += increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                direction = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate (``nan`` before any observation)."""
        if self._count == 0:
            return float("nan")
        if self._count <= 5:
            return _percentile_of_sorted(self._heights, 100.0 * self.p)
        return float(self._heights[2])


class OnlineStats:
    """Online mean/variance (Welford) plus P² tail estimates for one metric.

    Parameters
    ----------
    quantiles:
        Extra quantiles (fractions in (0, 1)) to track alongside the default
        :data:`TRACKED_QUANTILES`.  The defaults are always kept so
        :meth:`summary` (p50/p95/p99) works regardless of the extras.
    """

    __slots__ = ("count", "mean", "_m2", "maximum", "_quantiles", "tracked_quantiles")

    TRACKED_QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)

    def __init__(self, quantiles: Optional[Sequence[float]] = None) -> None:
        tracked = set(self.TRACKED_QUANTILES)
        for p in quantiles or ():
            if not 0.0 < p < 1.0:
                raise ValueError(f"tracked quantiles must be in (0, 1), got {p!r}")
            tracked.add(float(p))
        self.tracked_quantiles = tuple(sorted(tracked))
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.maximum = float("-inf")
        self._quantiles = {p: P2Quantile(p) for p in self.tracked_quantiles}

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value > self.maximum:
            self.maximum = value
        for estimator in self._quantiles.values():
            estimator.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (``nan`` for fewer than two observations)."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    def quantile(self, q: float) -> float:
        """Estimated percentile (``q`` in [0, 100]) for a tracked quantile."""
        p = q / 100.0
        for tracked, estimator in self._quantiles.items():
            if math.isclose(tracked, p):
                return estimator.value()
        raise ValueError(
            f"streaming statistics track only the "
            f"{[100 * t for t in self.tracked_quantiles]} percentiles, got {q!r}"
        )

    def summary(self) -> "SummaryStatistics":
        if self.count == 0:
            return SummaryStatistics.empty()
        return SummaryStatistics(
            count=self.count,
            mean=self.mean,
            p50=self.quantile(50.0),
            p95=self.quantile(95.0),
            p99=self.quantile(99.0),
            maximum=self.maximum,
        )


@dataclass
class JobRecord:
    """Per-job accounting of one completed job."""

    job_id: int
    priority: int
    arrival_time: float
    start_time: float
    completion_time: float
    execution_time: float
    wasted_time: float = 0.0
    evictions: int = 0
    drop_ratio: float = 0.0
    accuracy_loss: float = 0.0
    sprinted_time: float = 0.0
    size_mb: float = 0.0
    num_map_tasks: int = 0
    num_reduce_tasks: int = 0

    @property
    def response_time(self) -> float:
        """End-to-end latency: completion minus arrival."""
        return self.completion_time - self.arrival_time

    @property
    def queueing_time(self) -> float:
        """Time not spent in productive execution (includes eviction waste)."""
        return self.response_time - self.execution_time

    @property
    def slowdown(self) -> float:
        """Response time divided by (non-wasted) execution time."""
        if self.execution_time <= 0:
            return float("inf")
        return self.response_time / self.execution_time


@dataclass
class SummaryStatistics:
    """Mean / tail summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "SummaryStatistics":
        return cls(count=0, mean=float("nan"), p50=float("nan"),
                   p95=float("nan"), p99=float("nan"), maximum=float("nan"))

    @classmethod
    def from_sorted(cls, ordered: Sequence[float]) -> "SummaryStatistics":
        """Summary of an already-sorted sample (single pass, no re-sorting)."""
        if not ordered:
            return cls.empty()
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile_of_sorted(ordered, 50),
            p95=_percentile_of_sorted(ordered, 95),
            p99=_percentile_of_sorted(ordered, 99),
            maximum=float(ordered[-1]),
        )

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SummaryStatistics":
        if not values:
            return cls.empty()
        return cls.from_sorted(sorted(values))


@dataclass
class ClassMetrics:
    """Aggregated metrics for one priority class.

    ``mean_slowdown`` averages per-job response/execution ratios over jobs
    with positive execution time; it is tracked online in streaming mode so
    eviction/slowdown reports work on replayed million-job runs.
    """

    priority: int
    response_time: SummaryStatistics
    queueing_time: SummaryStatistics
    execution_time: SummaryStatistics
    accuracy_loss_mean: float
    evictions: int
    wasted_time: float
    job_count: int
    mean_slowdown: float = float("nan")


@dataclass
class EnergyAccount:
    """Accumulated energy by operating mode (joules)."""

    idle_joules: float = 0.0
    busy_joules: float = 0.0
    sprint_joules: float = 0.0

    @property
    def total_joules(self) -> float:
        return self.idle_joules + self.busy_joules + self.sprint_joules

    @property
    def total_kilojoules(self) -> float:
        return self.total_joules / 1000.0

    def add(self, mode: str, joules: float) -> None:
        if joules < 0:
            raise ValueError(f"energy increments must be non-negative, got {joules!r}")
        if mode == "idle":
            self.idle_joules += joules
        elif mode == "busy":
            self.busy_joules += joules
        elif mode == "sprint":
            self.sprint_joules += joules
        else:
            raise ValueError(f"unknown energy mode {mode!r}")


class _StreamingClassState:
    """Online per-class aggregates for the streaming collector."""

    __slots__ = (
        "response",
        "queueing",
        "execution",
        "loss_sum",
        "evictions",
        "wasted_time",
        "slowdown_sum",
        "slowdown_count",
    )

    def __init__(self, quantiles: Optional[Sequence[float]] = None) -> None:
        self.response = OnlineStats(quantiles)
        self.queueing = OnlineStats(quantiles)
        self.execution = OnlineStats(quantiles)
        self.loss_sum = 0.0
        self.evictions = 0
        self.wasted_time = 0.0
        self.slowdown_sum = 0.0
        self.slowdown_count = 0

    def add(self, record: JobRecord) -> None:
        self.response.add(record.response_time)
        self.queueing.add(record.queueing_time)
        self.execution.add(record.execution_time)
        self.loss_sum += record.accuracy_loss
        self.evictions += record.evictions
        self.wasted_time += record.wasted_time
        if record.execution_time > 0:
            self.slowdown_sum += record.slowdown
            self.slowdown_count += 1

    def to_class_metrics(self, priority: int) -> ClassMetrics:
        count = self.response.count
        return ClassMetrics(
            priority=priority,
            response_time=self.response.summary(),
            queueing_time=self.queueing.summary(),
            execution_time=self.execution.summary(),
            accuracy_loss_mean=(self.loss_sum / count) if count else float("nan"),
            evictions=self.evictions,
            wasted_time=self.wasted_time,
            job_count=count,
            mean_slowdown=(
                self.slowdown_sum / self.slowdown_count
                if self.slowdown_count
                else float("nan")
            ),
        )


class MetricsCollector:
    """Collects per-job records and produces per-class and global summaries.

    Parameters
    ----------
    streaming:
        When ``True`` the collector keeps only O(1) online aggregates per
        priority class instead of every :class:`JobRecord` — means, counts,
        maxima and totals stay exact while percentiles become P² estimates.
        Record-level accessors (:attr:`records`, :meth:`records_for_priority`,
        :meth:`to_rows`, :meth:`merge`) raise ``RuntimeError`` in this mode.
    quantiles:
        Extra quantiles (fractions in (0, 1)) tracked by the streaming
        estimators, on top of the default p50/p95/p99.  Query them through
        :meth:`tail_response_time` (e.g. ``q=99.9`` after passing ``0.999``).
        Ignored in batch mode, where any percentile is exact already.
    """

    def __init__(
        self, streaming: bool = False, quantiles: Optional[Sequence[float]] = None
    ) -> None:
        self._streaming = bool(streaming)
        self._quantiles: Optional[Tuple[float, ...]] = (
            tuple(quantiles) if quantiles else None
        )
        self._records: List[JobRecord] = []
        self._class_state: Dict[int, _StreamingClassState] = {}
        self._global_response: Optional[OnlineStats] = (
            OnlineStats(self._quantiles) if streaming else None
        )
        self._job_count = 0
        self.energy = EnergyAccount()
        self._busy_time = 0.0
        self._wasted_time = 0.0
        self._useful_time = 0.0
        self._observation_time = 0.0
        # Batch-mode summary caches, invalidated on every record_job().
        self._partitions: Optional[Dict[int, List[JobRecord]]] = None
        self._sorted_cache: Dict[Tuple[Optional[int], str], List[float]] = {}

    # ----------------------------------------------------------- recording
    @property
    def streaming(self) -> bool:
        return self._streaming

    def record_job(self, record: JobRecord) -> None:
        """Add one completed job."""
        if record.completion_time < record.arrival_time:
            raise ValueError("job completed before it arrived")
        self._job_count += 1
        self._wasted_time += record.wasted_time
        self._useful_time += record.execution_time
        if self._streaming:
            state = self._class_state.get(record.priority)
            if state is None:
                state = self._class_state[record.priority] = _StreamingClassState(
                    self._quantiles
                )
            state.add(record)
            self._global_response.add(record.response_time)
            return
        self._records.append(record)
        if self._partitions is not None:
            self._partitions = None
        if self._sorted_cache:
            self._sorted_cache.clear()

    def record_busy_time(self, duration: float) -> None:
        """Account productive (non-wasted) engine busy time."""
        if duration < 0:
            raise ValueError("busy time must be non-negative")
        self._busy_time += duration

    def set_observation_time(self, duration: float) -> None:
        """Record the total simulated horizon (for utilisation computations)."""
        self._observation_time = float(duration)

    # ------------------------------------------------------------ accessors
    def _require_records(self, operation: str) -> None:
        if self._streaming:
            raise RuntimeError(
                f"a streaming MetricsCollector does not retain per-job records; "
                f"{operation} is unavailable (construct with streaming=False)"
            )

    @property
    def records(self) -> List[JobRecord]:
        self._require_records("records")
        return list(self._records)

    @property
    def job_count(self) -> int:
        return self._job_count

    @property
    def busy_time(self) -> float:
        """Productive engine busy time accounted so far (telemetry samplers)."""
        return self._busy_time

    @property
    def wasted_time(self) -> float:
        """Machine time lost to evictions so far (telemetry samplers)."""
        return self._wasted_time

    @property
    def tracked_quantiles(self) -> Tuple[float, ...]:
        """Quantiles the streaming estimators track (defaults in batch mode)."""
        if self._global_response is not None:
            return self._global_response.tracked_quantiles
        stats = OnlineStats(self._quantiles)
        return stats.tracked_quantiles

    def records_for_priority(self, priority: int) -> List[JobRecord]:
        self._require_records("records_for_priority")
        return list(self._partition_map().get(priority, ()))

    def priorities(self) -> List[int]:
        if self._streaming:
            return sorted(self._class_state)
        return sorted(self._partition_map())

    # ----------------------------------------------------- summary caches
    def _partition_map(self) -> Dict[int, List[JobRecord]]:
        """Per-class record partition, computed once per collector generation."""
        partitions = self._partitions
        if partitions is None:
            partitions = {}
            for record in self._records:
                bucket = partitions.get(record.priority)
                if bucket is None:
                    bucket = partitions[record.priority] = []
                bucket.append(record)
            self._partitions = partitions
        return partitions

    def _sorted_values(self, priority: Optional[int], metric: str) -> List[float]:
        """Sorted values of ``metric`` for one class (or all), sorted once."""
        key = (priority, metric)
        cached = self._sorted_cache.get(key)
        if cached is None:
            if priority is None:
                records: Sequence[JobRecord] = self._records
            else:
                records = self._partition_map().get(priority, ())
            cached = sorted(getattr(record, metric) for record in records)
            self._sorted_cache[key] = cached
        return cached

    # ------------------------------------------------------------ summaries
    def class_metrics(self, priority: int) -> ClassMetrics:
        if self._streaming:
            state = self._class_state.get(priority)
            if state is None:
                state = _StreamingClassState()
            return state.to_class_metrics(priority)
        records = self._partition_map().get(priority, [])
        losses = [r.accuracy_loss for r in records]
        slowdowns = [r.slowdown for r in records if r.execution_time > 0]
        return ClassMetrics(
            priority=priority,
            response_time=SummaryStatistics.from_sorted(
                self._sorted_values(priority, "response_time")
            ),
            queueing_time=SummaryStatistics.from_sorted(
                self._sorted_values(priority, "queueing_time")
            ),
            execution_time=SummaryStatistics.from_sorted(
                self._sorted_values(priority, "execution_time")
            ),
            accuracy_loss_mean=(sum(losses) / len(losses)) if losses else float("nan"),
            evictions=sum(r.evictions for r in records),
            wasted_time=sum(r.wasted_time for r in records),
            job_count=len(records),
            mean_slowdown=(sum(slowdowns) / len(slowdowns)) if slowdowns else float("nan"),
        )

    def all_class_metrics(self) -> Dict[int, ClassMetrics]:
        return {priority: self.class_metrics(priority) for priority in self.priorities()}

    def resource_waste_fraction(self) -> float:
        """Wasted machine time over total (useful + wasted) processing time."""
        total = self._useful_time + self._wasted_time
        if total <= 0:
            return 0.0
        return self._wasted_time / total

    def utilisation(self) -> float:
        """Fraction of the observation window the engine was busy."""
        if self._observation_time <= 0:
            return float("nan")
        return (self._busy_time + self._wasted_time) / self._observation_time

    def mean_response_time(self, priority: Optional[int] = None) -> float:
        if self._streaming:
            if priority is None:
                stats = self._global_response
            else:
                state = self._class_state.get(priority)
                stats = state.response if state is not None else None
            if stats is None or stats.count == 0:
                return float("nan")
            return stats.mean
        values = self._sorted_values(priority, "response_time")
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def tail_response_time(self, priority: Optional[int] = None, q: float = 95.0) -> float:
        if self._streaming:
            if priority is None:
                stats = self._global_response
            else:
                state = self._class_state.get(priority)
                stats = state.response if state is not None else None
            if stats is None or stats.count == 0:
                return float("nan")
            return stats.quantile(q)
        values = self._sorted_values(priority, "response_time")
        if not values:
            return float("nan")
        return _percentile_of_sorted(values, q)

    # --------------------------------------------------------------- export
    def to_rows(self) -> List[Dict[str, float]]:
        """Export per-job rows for reporting / CSV-style dumps."""
        self._require_records("to_rows")
        rows = []
        for r in self._records:
            rows.append(
                {
                    "job_id": r.job_id,
                    "priority": r.priority,
                    "arrival_time": r.arrival_time,
                    "start_time": r.start_time,
                    "completion_time": r.completion_time,
                    "response_time": r.response_time,
                    "queueing_time": r.queueing_time,
                    "execution_time": r.execution_time,
                    "wasted_time": r.wasted_time,
                    "evictions": r.evictions,
                    "drop_ratio": r.drop_ratio,
                    "accuracy_loss": r.accuracy_loss,
                    "sprinted_time": r.sprinted_time,
                }
            )
        return rows

    def merge(self, other: "MetricsCollector") -> None:
        """Merge another collector's records (e.g. across replications)."""
        self._require_records("merge")
        for record in other.records:
            self.record_job(record)
        self.energy.idle_joules += other.energy.idle_joules
        self.energy.busy_joules += other.energy.busy_joules
        self.energy.sprint_joules += other.energy.sprint_joules
        self._busy_time += other._busy_time
        self._observation_time += other._observation_time
