"""Metric collection for priority-scheduling simulations.

The collector records one :class:`JobRecord` per completed job and exposes the
summary statistics the paper reports:

* mean and tail (95th percentile) response time per priority class,
* mean queueing and execution time per class (Table 2),
* resource waste — machine time spent re-processing evicted jobs as a
  percentage of total processing time (§5.1),
* total energy consumed (Fig. 11c),
* accuracy loss per class (from the applied drop ratios).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Implemented locally (rather than via numpy) so metric summaries stay
    dependency-light and behave identically on lists and tuples.  Raises
    ``ValueError`` on empty input.
    """
    if not values:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass
class JobRecord:
    """Per-job accounting of one completed job."""

    job_id: int
    priority: int
    arrival_time: float
    start_time: float
    completion_time: float
    execution_time: float
    wasted_time: float = 0.0
    evictions: int = 0
    drop_ratio: float = 0.0
    accuracy_loss: float = 0.0
    sprinted_time: float = 0.0
    size_mb: float = 0.0
    num_map_tasks: int = 0
    num_reduce_tasks: int = 0

    @property
    def response_time(self) -> float:
        """End-to-end latency: completion minus arrival."""
        return self.completion_time - self.arrival_time

    @property
    def queueing_time(self) -> float:
        """Time not spent in productive execution (includes eviction waste)."""
        return self.response_time - self.execution_time

    @property
    def slowdown(self) -> float:
        """Response time divided by (non-wasted) execution time."""
        if self.execution_time <= 0:
            return float("inf")
        return self.response_time / self.execution_time


@dataclass
class SummaryStatistics:
    """Mean / tail summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SummaryStatistics":
        if not values:
            return cls(count=0, mean=float("nan"), p50=float("nan"),
                       p95=float("nan"), p99=float("nan"), maximum=float("nan"))
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            maximum=max(values),
        )


@dataclass
class ClassMetrics:
    """Aggregated metrics for one priority class."""

    priority: int
    response_time: SummaryStatistics
    queueing_time: SummaryStatistics
    execution_time: SummaryStatistics
    accuracy_loss_mean: float
    evictions: int
    wasted_time: float
    job_count: int


@dataclass
class EnergyAccount:
    """Accumulated energy by operating mode (joules)."""

    idle_joules: float = 0.0
    busy_joules: float = 0.0
    sprint_joules: float = 0.0

    @property
    def total_joules(self) -> float:
        return self.idle_joules + self.busy_joules + self.sprint_joules

    @property
    def total_kilojoules(self) -> float:
        return self.total_joules / 1000.0

    def add(self, mode: str, joules: float) -> None:
        if joules < 0:
            raise ValueError(f"energy increments must be non-negative, got {joules!r}")
        if mode == "idle":
            self.idle_joules += joules
        elif mode == "busy":
            self.busy_joules += joules
        elif mode == "sprint":
            self.sprint_joules += joules
        else:
            raise ValueError(f"unknown energy mode {mode!r}")


class MetricsCollector:
    """Collects per-job records and produces per-class and global summaries."""

    def __init__(self) -> None:
        self._records: List[JobRecord] = []
        self.energy = EnergyAccount()
        self._busy_time = 0.0
        self._wasted_time = 0.0
        self._observation_time = 0.0

    # ----------------------------------------------------------- recording
    def record_job(self, record: JobRecord) -> None:
        """Add one completed job."""
        if record.completion_time < record.arrival_time:
            raise ValueError("job completed before it arrived")
        self._records.append(record)
        self._wasted_time += record.wasted_time

    def record_busy_time(self, duration: float) -> None:
        """Account productive (non-wasted) engine busy time."""
        if duration < 0:
            raise ValueError("busy time must be non-negative")
        self._busy_time += duration

    def set_observation_time(self, duration: float) -> None:
        """Record the total simulated horizon (for utilisation computations)."""
        self._observation_time = float(duration)

    # ------------------------------------------------------------ accessors
    @property
    def records(self) -> List[JobRecord]:
        return list(self._records)

    @property
    def job_count(self) -> int:
        return len(self._records)

    def records_for_priority(self, priority: int) -> List[JobRecord]:
        return [r for r in self._records if r.priority == priority]

    def priorities(self) -> List[int]:
        return sorted({r.priority for r in self._records})

    # ------------------------------------------------------------ summaries
    def class_metrics(self, priority: int) -> ClassMetrics:
        records = self.records_for_priority(priority)
        responses = [r.response_time for r in records]
        queueing = [r.queueing_time for r in records]
        execution = [r.execution_time for r in records]
        losses = [r.accuracy_loss for r in records]
        return ClassMetrics(
            priority=priority,
            response_time=SummaryStatistics.from_values(responses),
            queueing_time=SummaryStatistics.from_values(queueing),
            execution_time=SummaryStatistics.from_values(execution),
            accuracy_loss_mean=(sum(losses) / len(losses)) if losses else float("nan"),
            evictions=sum(r.evictions for r in records),
            wasted_time=sum(r.wasted_time for r in records),
            job_count=len(records),
        )

    def all_class_metrics(self) -> Dict[int, ClassMetrics]:
        return {priority: self.class_metrics(priority) for priority in self.priorities()}

    def resource_waste_fraction(self) -> float:
        """Wasted machine time over total (useful + wasted) processing time."""
        useful = sum(r.execution_time for r in self._records)
        wasted = self._wasted_time
        total = useful + wasted
        if total <= 0:
            return 0.0
        return wasted / total

    def utilisation(self) -> float:
        """Fraction of the observation window the engine was busy."""
        if self._observation_time <= 0:
            return float("nan")
        return (self._busy_time + self._wasted_time) / self._observation_time

    def mean_response_time(self, priority: Optional[int] = None) -> float:
        records = self._records if priority is None else self.records_for_priority(priority)
        if not records:
            return float("nan")
        return sum(r.response_time for r in records) / len(records)

    def tail_response_time(self, priority: Optional[int] = None, q: float = 95.0) -> float:
        records = self._records if priority is None else self.records_for_priority(priority)
        if not records:
            return float("nan")
        return percentile([r.response_time for r in records], q)

    # --------------------------------------------------------------- export
    def to_rows(self) -> List[Dict[str, float]]:
        """Export per-job rows for reporting / CSV-style dumps."""
        rows = []
        for r in self._records:
            rows.append(
                {
                    "job_id": r.job_id,
                    "priority": r.priority,
                    "arrival_time": r.arrival_time,
                    "start_time": r.start_time,
                    "completion_time": r.completion_time,
                    "response_time": r.response_time,
                    "queueing_time": r.queueing_time,
                    "execution_time": r.execution_time,
                    "wasted_time": r.wasted_time,
                    "evictions": r.evictions,
                    "drop_ratio": r.drop_ratio,
                    "accuracy_loss": r.accuracy_loss,
                    "sprinted_time": r.sprinted_time,
                }
            )
        return rows

    def merge(self, other: "MetricsCollector") -> None:
        """Merge another collector's records (e.g. across replications)."""
        for record in other.records:
            self.record_job(record)
        self.energy.idle_joules += other.energy.idle_joules
        self.energy.busy_joules += other.energy.busy_joules
        self.energy.sprint_joules += other.energy.sprint_joules
        self._busy_time += other._busy_time
        self._observation_time += other._observation_time
