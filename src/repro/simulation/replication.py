"""Replicated simulation runs with confidence intervals.

A single simulated trace gives point estimates of the mean/tail latencies; the
paper's bar charts are likewise single-run measurements.  For statements like
"DA(0,20) improves the low-priority mean latency by 60 %" it is useful to know
how tight that estimate is.  This module runs the same scenario/policy
combination over several independently seeded traces and aggregates the
per-replication metrics into means with Student-t confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from scipy import stats


def replication_seed(base_seed: int, index: int) -> int:
    """Seed of the ``index``-th replication rooted at ``base_seed``.

    Seeds are spaced 1000 apart (plus the index itself, so distinct bases
    never collide across shifted windows).  Centralising the formula keeps
    serial and parallel execution — and every caller — on the *same* seed
    sequence, which is what makes common-random-number comparisons and
    bitwise serial/parallel equivalence possible.
    """
    return base_seed + 1000 * index + index


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    replications: int

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to the mean (nan for a zero mean)."""
        if self.mean == 0:
            return float("nan")
        return abs(self.half_width / self.mean)


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``samples``."""
    if not samples:
        raise ValueError("at least one sample is required")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=float("inf"),
                                  confidence=confidence, replications=1)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std_error = math.sqrt(variance / n)
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(mean=mean, half_width=t_value * std_error,
                              confidence=confidence, replications=n)


@dataclass
class ReplicatedMetric:
    """A named metric aggregated over replications."""

    name: str
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        return confidence_interval(self.samples, confidence)


class ReplicationRunner:
    """Runs a metric-producing experiment over several seeds and aggregates.

    The ``experiment`` callable receives a seed and returns a mapping of
    metric name to value (e.g. ``{"low_mean": 130.2, "high_mean": 58.1}``).

    A runner is single-use: calling :meth:`run` or :meth:`run_until_precise`
    a second time raises instead of silently mixing the metric samples of two
    different runs.  Call :meth:`reset` (or build a fresh runner) to reuse.

    Both entry points accept ``jobs``: with ``jobs > 1`` the independent
    replications fan out across a process pool (each replication is a pure
    function of its :func:`replication_seed`), and the collected metrics are
    bitwise-identical to a serial run because outcomes are folded back in
    replication-index order.
    """

    def __init__(self, experiment: Callable[[int], Dict[str, float]]) -> None:
        self.experiment = experiment
        self.metrics: Dict[str, ReplicatedMetric] = {}
        self._consumed = False

    def reset(self) -> None:
        """Discard collected metrics so the runner can be used again."""
        self.metrics = {}
        self._consumed = False

    def _claim(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "this ReplicationRunner has already run; its metrics would mix "
                "samples from multiple runs — call reset() or create a new runner"
            )
        self._consumed = True

    def _record(self, outcome: Dict[str, float]) -> None:
        for name, value in outcome.items():
            self.metrics.setdefault(name, ReplicatedMetric(name)).add(value)

    def run(
        self, replications: int, base_seed: int = 0, jobs: int = 1
    ) -> Dict[str, ReplicatedMetric]:
        """Run ``replications`` independent experiments (``jobs`` in parallel)."""
        if replications <= 0:
            raise ValueError("replications must be positive")
        self._claim()
        from repro.experiments.parallel import parallel_map

        seeds = [replication_seed(base_seed, index) for index in range(replications)]
        for outcome in parallel_map(self.experiment, seeds, jobs=jobs):
            self._record(outcome)
        return self.metrics

    def intervals(self, confidence: float = 0.95) -> Dict[str, ConfidenceInterval]:
        """Confidence intervals of every collected metric."""
        return {name: metric.interval(confidence) for name, metric in self.metrics.items()}

    def run_until_precise(
        self,
        target_relative_half_width: float,
        metric: str,
        min_replications: int = 3,
        max_replications: int = 30,
        base_seed: int = 0,
        confidence: float = 0.95,
        jobs: int = 1,
    ) -> ConfidenceInterval:
        """Add replications until ``metric``'s relative half-width meets the target.

        With ``jobs > 1`` replications are evaluated in batches of ``jobs``,
        but the stopping rule is still applied sample-by-sample in replication
        order and surplus batch outcomes past the stopping point are
        discarded, so the returned interval (and every collected sample) is
        identical to a serial run.
        """
        if not 0.0 < target_relative_half_width < 1.0:
            raise ValueError("target_relative_half_width must be in (0, 1)")
        self._claim()
        from repro.experiments.parallel import parallel_map

        count = 0
        while True:
            batch_size = max(1, min(jobs, max_replications - count))
            seeds = [replication_seed(base_seed, count + k) for k in range(batch_size)]
            for outcome in parallel_map(self.experiment, seeds, jobs=jobs):
                self._record(outcome)
                count += 1
                if metric not in self.metrics:
                    raise KeyError(f"the experiment does not produce metric {metric!r}")
                if count >= min_replications:
                    interval = self.metrics[metric].interval(confidence)
                    if interval.relative_half_width <= target_relative_half_width:
                        return interval
                if count >= max_replications:
                    return self.metrics[metric].interval(confidence)
