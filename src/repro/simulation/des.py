"""A small, fast discrete-event simulation kernel.

The kernel is deliberately minimal: a binary-heap event list, a simulation
clock, and cancellable events.  All higher-level behaviour (job arrivals,
task completions, sprint timeouts, budget replenishment) is expressed as
events scheduled by the engine and controller layers.

Design notes
------------
* Events are ordered by ``(time, priority, sequence)``.  The sequence number
  makes ordering deterministic for events scheduled at the same instant, which
  keeps simulations reproducible across runs and platforms.
* Cancellation is *lazy*: a cancelled event stays in the heap but is skipped
  when popped.  This keeps cancellation O(1), which matters because preemption
  and DVFS changes cancel many in-flight task-completion events.  Skipping is
  iterative, so arbitrarily long runs of cancelled entries (preemption or DVFS
  storms) cannot exhaust the Python recursion limit.
* Heap entries are flat ``(time, priority, seq, event)`` tuples.  ``seq`` is
  unique per simulator, so comparisons never reach the (incomparable) event
  object, and the hot scheduling path avoids an extra method call and nested
  tuple per event.
* **Hot-path specialisation.**  :class:`Event` is a ``__slots__`` class (no
  dataclass machinery, no per-instance ``__dict__``), the sequence counter is
  a plain integer that doubles as the scheduled-event count,
  ``heapq.heappush``/``heappop`` are bound at module level, conversions are
  skipped when arguments already have the right type, and
  :meth:`Simulator.run` drives the heap directly — with a specialised tight
  loop for the common "run to exhaustion" case — instead of calling
  :meth:`peek_time`/:meth:`step` per event.  Together these roughly double
  event throughput over the naive dataclass/delegating implementation (see
  ``benchmarks/bench_kernel_throughput.py``).
* **Heap compaction.**  Cancel storms (mass preemption, DVFS mode flips) can
  leave the heap dominated by dead entries that lazy skipping only reclaims
  when their firing time arrives — far-future cancelled events would otherwise
  bloat the heap unboundedly as the simulation keeps scheduling.  Instead of
  paying bookkeeping per cancel, the kernel re-examines the heap every time it
  doubles past a watermark (amortised O(1) per schedule): if at least
  ``compaction_threshold`` entries are dead *and* they make up at least half
  the heap, it is rebuilt in place without them.  Because
  ``(time, priority, seq)`` is a strict total order, re-heapifying the
  survivors pops them in exactly the same order as lazy skipping would have —
  compaction is invisible to the simulation.
* The kernel knows nothing about jobs, priorities or energy; it only runs
  callbacks at simulated times.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.telemetry.hub import NULL_HUB, TelemetryHub

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify

#: Dead heap entries required before a rebuild is considered (see
#: :class:`Simulator`).  High enough that unit-scale simulations never pay a
#: rebuild; low enough that storm-heavy runs stay within ~2x the live size.
DEFAULT_COMPACTION_THRESHOLD = 512

#: Heap size at which the first compaction scan happens; subsequent scans run
#: each time the heap doubles past the size seen at the previous scan.
_MIN_COMPACTION_WATERMARK = 64


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    priority:
        Tie-breaking priority for events at the same time (lower fires first).
    seq:
        Monotonic sequence number assigned by the simulator.
    callback:
        Callable invoked as ``callback(simulator)`` when the event fires.
    payload:
        Arbitrary user data attached to the event.
    cancelled:
        Lazily-checked cancellation flag.
    """

    __slots__ = ("time", "priority", "seq", "callback", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[["Simulator"], None],
        payload: Any = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time!r}, priority={self.priority!r}, seq={self.seq!r}{state})"


class Simulator:
    """Event-driven simulator with a monotonically advancing clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock.
    compaction_threshold:
        Minimum number of cancelled-but-unfired events before a heap rebuild
        drops them (and only once they are at least half the heap).  ``0`` or
        ``None`` disables compaction (pure lazy skipping).
    telemetry:
        Probe bus for kernel events (heap compactions).  Defaults to the
        shared always-disabled :data:`~repro.telemetry.hub.NULL_HUB`, so the
        hot scheduling/dispatch loops pay nothing when telemetry is off: the
        only probe site is inside :meth:`_compact`, which already runs rarely
        (amortised O(1) per schedule).
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_cancel_pops",
        "_compaction_losses",
        "_running",
        "_stopped",
        "_compactions",
        "_compaction_threshold",
        "_compaction_watermark",
        "telemetry",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        compaction_threshold: Optional[int] = DEFAULT_COMPACTION_THRESHOLD,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        self._now = float(start_time)
        self.telemetry = telemetry
        self._heap: List[tuple] = []
        self._seq = 0
        # Executed-event accounting is *derived*, never counted per event:
        # every scheduled event is either still in the heap, was popped while
        # cancelled, was dropped by a compaction rebuild, or was executed.
        # Tracking only the two rare buckets keeps the hot run loop free of
        # per-event counter writes while telemetry samplers still read an
        # exact live count (see :attr:`processed_events`).
        self._cancel_pops = 0
        self._compaction_losses = 0
        self._running = False
        self._stopped = False
        self._compactions = 0
        self._compaction_threshold = int(compaction_threshold or 0)
        self._compaction_watermark = _MIN_COMPACTION_WATERMARK

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (excluding cancelled events).

        Derived as scheduled − pending − cancelled-pops − compaction-losses,
        which is exact at any instant (including from inside an event
        callback, where the running event counts as processed) without the
        run loop maintaining a per-event counter.
        """
        return (
            self._seq - len(self._heap) - self._cancel_pops - self._compaction_losses
        )

    @property
    def scheduled_events(self) -> int:
        """Number of events ever scheduled on this simulator."""
        return self._seq

    @property
    def pending_events(self) -> int:
        """Number of events currently in the heap (including cancelled)."""
        return len(self._heap)

    @property
    def heap_compactions(self) -> int:
        """Number of times the event heap was rebuilt to drop dead entries."""
        return self._compactions

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay!r}")
        if priority.__class__ is not int:
            priority = int(priority)
        seq = self._seq
        self._seq = seq + 1
        event = Event(self._now + delay, priority, seq, callback, payload)
        heap = self._heap
        _heappush(heap, (event.time, priority, seq, event))
        if len(heap) >= self._compaction_watermark:
            self._maybe_compact()
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r} before current time {self._now!r}"
            )
        if time.__class__ is not float:
            time = float(time)
        if priority.__class__ is not int:
            priority = int(priority)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, payload)
        heap = self._heap
        _heappush(heap, (time, priority, seq, event))
        if len(heap) >= self._compaction_watermark:
            self._maybe_compact()
        return event

    # -------------------------------------------------------------- execution
    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> Optional[Event]:
        """Execute the next event.  Returns the event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = _heappop(heap)[3]
            if not event.cancelled:
                self._now = event.time
                event.callback(self)
                return event
            self._cancel_pops += 1
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event list drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which the run stopped.  The same loops
        serve telemetry-off and telemetry-on runs: executed-event counts are
        derived (see :attr:`processed_events`), so sampling needs no
        per-event bookkeeping in here.
        """
        telemetry = self.telemetry
        span_id = (
            telemetry.new_span_id()
            if telemetry.enabled and telemetry.tracing
            else 0
        )
        started_at = self._now
        self._running = True
        self._stopped = False
        executed = 0
        # Hot loop: drive the heap directly with local bindings.  ``heap`` may
        # be mutated by callbacks (scheduling and compaction both operate on
        # the same list object in place), so the alias stays valid throughout.
        heap = self._heap
        pop = _heappop
        try:
            if until is None and max_events is None:
                # Specialised run-to-exhaustion loop (the common case).
                while heap:
                    if self._stopped:
                        break
                    event = pop(heap)[3]
                    if event.cancelled:
                        self._cancel_pops += 1
                        continue
                    self._now = event.time
                    executed += 1
                    event.callback(self)
            elif until is None:
                # Bounded-count loop: no deadline, so events can be popped
                # directly without peeking.
                while heap:
                    if self._stopped or executed >= max_events:
                        break
                    event = pop(heap)[3]
                    if event.cancelled:
                        self._cancel_pops += 1
                        continue
                    self._now = event.time
                    executed += 1
                    event.callback(self)
            else:
                while heap:
                    if self._stopped:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        pop(heap)
                        self._cancel_pops += 1
                        continue
                    event_time = entry[0]
                    if until is not None and event_time > until:
                        self._now = until
                        break
                    pop(heap)
                    self._now = event_time
                    executed += 1
                    event.callback(self)
        finally:
            self._running = False
        if until is not None and self._now < until and not heap:
            self._now = until
        if span_id:
            # One root-level span covering the whole kernel run; ``job_id=-1``
            # keeps it out of per-job trace assembly.
            telemetry.emit(
                "span",
                self._now,
                src="kernel",
                span_id=span_id,
                parent_id=0,
                name="run",
                cat="kernel",
                start=started_at,
                job_id=-1,
                events=executed,
            )
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # -------------------------------------------------------------- internals
    def _maybe_compact(self) -> None:
        """Scan for dead entries once the heap doubles past the watermark.

        The scan is O(heap) but runs at most once per doubling, so the
        amortised cost per scheduled event is O(1).
        """
        heap = self._heap
        threshold = self._compaction_threshold
        if threshold:
            dead = 0
            for entry in heap:
                if entry[3].cancelled:
                    dead += 1
            if dead >= threshold and dead * 2 >= len(heap):
                self._compact()
        self._compaction_watermark = max(len(self._heap) * 2, _MIN_COMPACTION_WATERMARK)

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving pop order.

        The rebuild mutates the heap list *in place* so aliases held by a
        running :meth:`run` loop keep observing the compacted heap.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        _heapify(heap)
        self._compaction_losses += before - len(heap)
        self._compactions += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "heap_compaction",
                self._now,
                src="kernel",
                before=before,
                after=len(heap),
                compactions=self._compactions,
            )

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            _heappop(heap)
            self._cancel_pops += 1
