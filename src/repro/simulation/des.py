"""A small, fast discrete-event simulation kernel.

The kernel is deliberately minimal: a binary-heap event list, a simulation
clock, and cancellable events.  All higher-level behaviour (job arrivals,
task completions, sprint timeouts, budget replenishment) is expressed as
events scheduled by the engine and controller layers.

Design notes
------------
* Events are ordered by ``(time, priority, sequence)``.  The sequence number
  makes ordering deterministic for events scheduled at the same instant, which
  keeps simulations reproducible across runs and platforms.
* Cancellation is *lazy*: a cancelled event stays in the heap but is skipped
  when popped.  This keeps cancellation O(1), which matters because preemption
  and DVFS changes cancel many in-flight task-completion events.  Skipping is
  iterative, so arbitrarily long runs of cancelled entries (preemption or DVFS
  storms) cannot exhaust the Python recursion limit.
* Heap entries are flat ``(time, priority, seq, event)`` tuples.  ``seq`` is
  unique per simulator, so comparisons never reach the (incomparable) event
  object, and the hot scheduling path avoids an extra method call and nested
  tuple per event.
* The kernel knows nothing about jobs, priorities or energy; it only runs
  callbacks at simulated times.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    priority:
        Tie-breaking priority for events at the same time (lower fires first).
    seq:
        Monotonic sequence number assigned by the simulator.
    callback:
        Callable invoked as ``callback(simulator)`` when the event fires.
    payload:
        Arbitrary user data attached to the event.
    cancelled:
        Lazily-checked cancellation flag.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[["Simulator"], None]
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)


class Simulator:
    """Event-driven simulator with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._event_count = 0
        self._processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (excluding cancelled events)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events currently in the heap (including cancelled)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority=priority, payload=payload)

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r} before current time {self._now!r}"
            )
        event = Event(
            time=float(time),
            priority=int(priority),
            seq=next(self._seq),
            callback=callback,
            payload=payload,
        )
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._event_count += 1
        return event

    # -------------------------------------------------------------- execution
    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> Optional[Event]:
        """Execute the next event.  Returns the event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(self)
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event list drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which the run stopped.
        """
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # -------------------------------------------------------------- internals
    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
