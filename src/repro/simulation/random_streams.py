"""Named, independently seeded random streams.

A simulation of DiAS draws randomness from several logically independent
sources: job inter-arrival times, class assignments, job sizes, per-task
execution times, and task-drop selections.  Using a single RNG for all of
them makes experiments fragile — changing the drop policy would perturb the
arrival sequence.  ``RandomStreams`` derives one child generator per named
stream from a root seed using ``numpy``'s ``SeedSequence`` spawning, so each
stream is independent and reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np


class RandomStreams:
    """A registry of named, independently seeded ``numpy`` generators."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        """Root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``.

        The child seed is derived deterministically from the root seed and the
        stream name, so the same name always yields the same sequence for a
        given root seed, independently of creation order.
        """
        if name not in self._streams:
            # Derive a stable per-name entropy from the name itself so stream
            # creation order does not matter.
            name_entropy = [b for b in name.encode("utf-8")]
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(name_entropy)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> Dict[str, np.random.Generator]:
        """Return a dict of generators for all ``names``."""
        return {name: self.stream(name) for name in names}

    # Convenience draws -----------------------------------------------------
    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean from ``name``."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform variate from ``name``."""
        return float(self.stream(name).uniform(low, high))

    def choice(self, name: str, options, probabilities=None):
        """Draw one element of ``options`` (optionally weighted)."""
        gen = self.stream(name)
        idx = gen.choice(len(options), p=probabilities)
        return options[int(idx)]

    def fork(self, salt: int) -> "RandomStreams":
        """Create an independent registry, e.g. for a replication index."""
        base = self._seed if self._seed is not None else 0
        return RandomStreams(seed=(base * 1_000_003 + salt) % (2**63 - 1))
