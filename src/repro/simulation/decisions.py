"""Decision-point protocol shared by the scheduling layers.

The DAG layer (which ready stage runs next) and the fleet layer (which
cluster an arriving job is routed to) both contain a single *decision point*
inside their DES callbacks.  This module defines the tiny, dependency-free
contract through which those decision points can yield control to an
external agent:

* :class:`DecisionPoint` — an immutable snapshot of one pending decision:
  what kind of choice it is, the simulated time, the candidate set, the job
  being placed, and the simulation object the decision belongs to (for
  feature extraction).
* A *decision hook* is any callable ``hook(point) -> int`` returning the
  index of the chosen candidate in ``point.candidates``.

Both ``DagExecution`` and ``FleetSimulation`` accept an optional
``decision_hook``; when it is ``None`` (the default) the built-in
scheduler/dispatcher path runs untouched — the hook costs one attribute
check per decision, keeping the no-agent path within the kernel-throughput
bench gate.  When a hook is attached it fully replaces the built-in
``select`` call, and the built-ins themselves are re-expressed as trivial
agents in :mod:`repro.env.agents`, which is what makes the refactor provably
behaviour-preserving (byte-identical results under common random numbers).

Everything richer — observation vectors, rewards, gym-style ``reset``/
``step`` episodes, learned agents — lives in :mod:`repro.env`, built on top
of this protocol.
"""

from typing import Any, Callable, Sequence

__all__ = ["DecisionPoint", "DecisionHook", "STAGE", "ROUTE", "DECISION_KINDS"]

#: Decision kinds: pick a ready stage to run / pick a cluster to route to.
STAGE = "stage"
ROUTE = "route"
DECISION_KINDS = (STAGE, ROUTE)


class DecisionPoint:
    """One pending decision, frozen at the instant control is yielded.

    Attributes
    ----------
    kind:
        ``"stage"`` (DAG stage scheduling: candidates are the dispatchable
        :class:`~repro.dag.schedulers.StageRunView` objects) or ``"route"``
        (fleet dispatch: candidates are the per-cluster
        :class:`~repro.core.dias.DiASSimulation` controllers).
    time:
        Simulated time of the decision.
    candidates:
        The non-empty candidate sequence; a hook returns an index into it.
    job:
        The :class:`~repro.engine.job.Job` being routed (``route``) or the
        :class:`~repro.dag.structure.DagJob` whose stage is being picked
        (``stage``).
    context:
        The owning simulation object — the :class:`~repro.dag.execution.
        DagExecution` (``stage``) or :class:`~repro.fleet.simulation.
        FleetSimulation` (``route``).  Agents may read from it (critical-path
        analysis, dispatcher, budgets) but must not mutate it.
    """

    __slots__ = ("kind", "time", "candidates", "job", "context")

    def __init__(
        self,
        kind: str,
        time: float,
        candidates: Sequence[Any],
        job: Any,
        context: Any,
    ) -> None:
        self.kind = kind
        self.time = time
        self.candidates = candidates
        self.job = job
        self.context = context

    @property
    def num_actions(self) -> int:
        """Size of the discrete action space at this decision."""
        return len(self.candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionPoint(kind={self.kind!r}, time={self.time:.6g}, "
            f"num_actions={len(self.candidates)})"
        )


#: A decision hook maps one decision point to the chosen candidate index.
DecisionHook = Callable[[DecisionPoint], int]
