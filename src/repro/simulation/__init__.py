"""Discrete-event simulation substrate.

This subpackage provides the simulation kernel on top of which the Spark-like
processing-engine model (:mod:`repro.engine`) and the DiAS controller
(:mod:`repro.core`) are built:

* :mod:`repro.simulation.des` — the event-driven simulation kernel
  (:class:`~repro.simulation.des.Simulator`, :class:`~repro.simulation.des.Event`).
* :mod:`repro.simulation.random_streams` — named, independently seeded random
  streams so that changing one source of randomness (e.g. arrivals) does not
  perturb another (e.g. task durations).
* :mod:`repro.simulation.metrics` — latency/energy/waste metric collection and
  summary statistics (means, percentiles, per-class breakdowns).
"""

from repro.simulation.des import Event, Simulator, SimulationError
from repro.simulation.metrics import (
    ClassMetrics,
    JobRecord,
    MetricsCollector,
    SummaryStatistics,
    percentile,
)
from repro.simulation.random_streams import RandomStreams
from repro.simulation.replication import (
    ConfidenceInterval,
    ReplicationRunner,
    confidence_interval,
    replication_seed,
)

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "ClassMetrics",
    "JobRecord",
    "MetricsCollector",
    "SummaryStatistics",
    "percentile",
    "RandomStreams",
    "ConfidenceInterval",
    "ReplicationRunner",
    "confidence_interval",
    "replication_seed",
]
