"""Execution of one DAG job on the cluster inside the simulator.

:class:`DagExecution` generalises the linear
:class:`~repro.engine.execution.JobExecution`: instead of a fixed sequence of
phases, it maintains the DAG's *frontier* — stages whose parents have all
completed — and lets every ready stage compete for the cluster's ``C``
computing slots.  Each time a slot frees up, the pluggable
:class:`~repro.dag.schedulers.StageScheduler` picks which ready stage the slot
serves next, one task at a time.  Within a stage the usual Spark discipline
holds: all map tasks, then the (serial) shuffle, then all reduce tasks.

Like its linear counterpart, the execution supports the two dynamic
operations DiAS needs — :meth:`DagExecution.set_speed` (cluster-wide DVFS
rescales all in-flight tasks) and :meth:`DagExecution.evict` (preemptive
eviction cancels everything and reports the wasted wall time) — so the DiAS
controller machinery (sprinter, energy meter, preemptive baseline) drives DAG
jobs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.dag.analytics import (
    CriticalPathAnalysis,
    analyze_critical_path,
    stage_duration,
    upward_ranks,
)
from repro.dag.graph import DagJob, DagStage
from repro.dag.schedulers import StageScheduler, make_stage_scheduler
from repro.engine.cluster import Cluster
from repro.engine.job import effective_task_count
from repro.simulation.decisions import STAGE, DecisionHook, DecisionPoint
from repro.simulation.des import Event, Simulator
from repro.telemetry.hub import NULL_HUB, TelemetryHub

#: Sentinel slot key for the job-level setup task.
_SETUP_SLOT = -1


class StageRun:
    """Runtime state of one stage: phase pointer, pending tasks, bookkeeping.

    Satisfies the :class:`~repro.dag.schedulers.StageRunView` protocol the
    stage schedulers observe.
    """

    def __init__(
        self,
        stage: DagStage,
        map_durations: Sequence[float],
        reduce_durations: Sequence[float],
    ) -> None:
        self.stage = stage
        # (durations, parallel) per phase; empty phases are skipped on entry.
        self._phases: List[tuple] = [(list(map_durations), True)]
        if stage.shuffle_time > 0 and reduce_durations:
            self._phases.append(([stage.shuffle_time], False))
        self._phases.append((list(reduce_durations), True))
        self._phase_index = -1
        self.pending: List[float] = []
        self._parallel = True
        self.active = 0
        self.ready_seq = -1
        self.unfinished_parents = len(stage.parents)
        self.done = False
        self.rank = 0.0
        self._undispatched = sum(d for durations, _ in self._phases for d in durations)
        # Trace span of this stage (0 / unset while tracing is off); opened
        # at activation, emitted when the stage finishes or is evicted.
        self.span_id = 0
        self.activated_at = 0.0

    # ----------------------------------------------------- scheduler queries
    @property
    def index(self) -> int:
        return self.stage.index

    @property
    def ready(self) -> bool:
        return self.ready_seq >= 0 and not self.done

    @property
    def pending_tasks(self) -> int:
        return len(self.pending)

    def remaining_work(self) -> float:
        """Undispatched task work left in this stage (seconds)."""
        return self._undispatched

    @property
    def dispatchable(self) -> bool:
        """Whether a free slot could serve a task of this stage right now."""
        if not self.ready or not self.pending:
            return False
        return self._parallel or self.active == 0

    # ------------------------------------------------------------ life cycle
    def activate(self, ready_seq: int) -> None:
        """All parents finished: enter the first non-empty phase."""
        self.ready_seq = ready_seq
        self._advance_to_nonempty_phase()

    def pop_task(self) -> float:
        duration = self.pending.pop(0)
        self._undispatched -= duration
        self.active += 1
        return duration

    def task_finished(self) -> bool:
        """One task completed; returns ``True`` when the whole stage is done."""
        self.active -= 1
        if self.pending or self.active > 0:
            return False
        self._advance_to_nonempty_phase()
        return self.done

    def _advance_to_nonempty_phase(self) -> None:
        while True:
            self._phase_index += 1
            if self._phase_index >= len(self._phases):
                self.done = True
                self.pending = []
                return
            durations, parallel = self._phases[self._phase_index]
            if durations:
                self.pending = list(durations)
                self._parallel = parallel
                return


@dataclass
class _ActiveTask:
    """Book-keeping for one in-flight task on one slot.

    ``started_at``/``span_id`` survive DVFS reschedules so task trace spans
    keep their true dispatch time (``span_id`` is 0 while tracing is off).
    ``base``/``attempt``/``will_fail`` only matter under fault injection:
    the undilated task duration (for requeue/retry), the 1-based attempt
    number, and whether this attempt was pre-drawn to fail at completion.
    """

    slot: int
    event: Event
    speed: float
    stage_run: Optional[StageRun]
    started_at: float = 0.0
    span_id: int = 0
    base: float = 0.0
    attempt: int = 1
    will_fail: bool = False


class DagExecution:
    """Executes one DAG job's stages on the cluster within the simulator.

    Parameters
    ----------
    scheduler:
        A :class:`StageScheduler` instance or name; consulted once per free
        slot whenever more than one ready stage has pending tasks.
    map_drop_ratio / reduce_drop_ratio:
        Uniform per-stage drop ratios (droppable stages only), mirroring
        :func:`~repro.engine.execution.build_phases`.
    stage_map_drop_ratios / stage_reduce_drop_ratios:
        Optional per-stage ratio overrides (e.g. slack-biased dropping).
    kept_map_indices / kept_reduce_indices:
        Explicit kept-task indices from a dropper plan; take precedence over
        any ratio.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`.  DAG tasks
        then draw stragglers and transient failures (retried in place with
        capped exponential backoff) and survive worker crashes by requeueing
        the lost tasks into their stages.  Unlike the linear engine the DAG
        layer launches **no speculative copies**: wave tails are already
        absorbed by the stage frontier, where freed slots immediately serve
        other ready stages instead of idling behind a straggler.
    on_give_up:
        Called with this execution when a task exhausts its retry budget
        (the controller typically evicts and restarts the whole job).
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        job: DagJob,
        scheduler: StageScheduler = "fifo",
        on_complete: Optional[Callable[["DagExecution"], None]] = None,
        map_drop_ratio: float = 0.0,
        reduce_drop_ratio: float = 0.0,
        stage_map_drop_ratios: Optional[Mapping[int, float]] = None,
        stage_reduce_drop_ratios: Optional[Mapping[int, float]] = None,
        kept_map_indices: Optional[Mapping[int, Sequence[int]]] = None,
        kept_reduce_indices: Optional[Mapping[int, Sequence[int]]] = None,
        setup_drop_ratio: Optional[float] = None,
        telemetry: TelemetryHub = NULL_HUB,
        telemetry_src: str = "dag",
        trace_parent: int = 0,
        faults=None,
        on_give_up: Optional[Callable[["DagExecution"], None]] = None,
        decision_hook: Optional[DecisionHook] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.job = job
        self._faults = faults
        self._on_give_up = on_give_up
        #: Optional external agent consulted at each stage decision; ``None``
        #: keeps the built-in scheduler path untouched (one check per pick).
        self._decision_hook = decision_hook
        #: Tasks sitting out a retry backoff: slot -> (event, base, attempt, run).
        self._retries: Dict[int, tuple] = {}
        self.telemetry = telemetry
        self.telemetry_src = telemetry_src
        #: Enclosing attempt span id when tracing (0 otherwise): stage spans
        #: attach to it, task spans to their stage span.
        self.trace_parent = trace_parent
        self._setup_span: Optional[tuple] = None
        self.scheduler = make_stage_scheduler(scheduler)
        self.on_complete = on_complete or (lambda execution: None)
        self._setup_time = job.setup_time(
            map_drop_ratio if setup_drop_ratio is None else setup_drop_ratio
        )

        kept_durations: Dict[int, float] = {}
        self._runs: Dict[int, StageRun] = {}
        for stage in job.dag:
            maps = self._kept(
                stage.map_task_times,
                stage,
                kept_map_indices,
                stage_map_drop_ratios,
                map_drop_ratio,
            )
            reduces = self._kept(
                stage.reduce_task_times,
                stage,
                kept_reduce_indices,
                stage_reduce_drop_ratios,
                reduce_drop_ratio,
            )
            self._runs[stage.index] = StageRun(stage, maps, reduces)
            kept_durations[stage.index] = stage_duration(
                stage, cluster.slots, map_durations=maps, reduce_durations=reduces
            )
        self.analysis: CriticalPathAnalysis = analyze_critical_path(
            job.dag, cluster.slots, stage_durations=kept_durations
        )
        for index, rank in upward_ranks(
            job.dag, cluster.slots, stage_durations=kept_durations
        ).items():
            self._runs[index].rank = rank

        self._active: Dict[int, _ActiveTask] = {}
        self._free_slots: List[int] = []
        self._ready_counter = 0
        self._remaining_stages = len(self._runs)

        self.started = False
        self.completed = False
        self.evicted = False
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None

        self._speed = 1.0
        self._speed_since: Optional[float] = None
        self.sprinted_time = 0.0

    @staticmethod
    def _kept(
        durations: Sequence[float],
        stage: DagStage,
        kept_indices: Optional[Mapping[int, Sequence[int]]],
        stage_ratios: Optional[Mapping[int, float]],
        uniform_ratio: float,
    ) -> List[float]:
        if kept_indices is not None and stage.index in kept_indices:
            return [durations[i] for i in kept_indices[stage.index]]
        if not stage.droppable:
            return list(durations)
        ratio = uniform_ratio
        if stage_ratios is not None:
            ratio = stage_ratios.get(stage.index, uniform_ratio)
        keep = effective_task_count(len(durations), ratio)
        return list(durations[:keep])

    # --------------------------------------------------------------- queries
    @property
    def running(self) -> bool:
        return self.started and not self.completed and not self.evicted

    @property
    def elapsed(self) -> float:
        """Wall time of this attempt so far (or total, once completed)."""
        if self.start_time is None:
            return 0.0
        end = self.completion_time if self.completion_time is not None else self.sim.now
        return end - self.start_time

    @property
    def speed(self) -> float:
        return self._speed

    @property
    def makespan(self) -> Optional[float]:
        """Total wall time of the completed execution (``None`` before)."""
        return self.elapsed if self.completed else None

    @property
    def lower_bound_makespan(self) -> float:
        """Setup plus the critical-path/work lower bound on the kept tasks."""
        return self._setup_time + self.analysis.lower_bound_makespan

    def stage_run(self, index: int) -> StageRun:
        return self._runs[index]

    # ---------------------------------------------------------------- control
    def start(self, speed: Optional[float] = None) -> None:
        """Begin executing the job at the current simulation time."""
        if self.started:
            raise RuntimeError("DAG execution already started")
        self.started = True
        self.start_time = self.sim.now
        self._speed = float(speed) if speed is not None else self.cluster.speed
        self._speed_since = self.sim.now
        self._free_slots = (
            list(range(self.cluster.slots))
            if self._faults is None
            else self.cluster.free_slot_ids()
        )
        if self._setup_time > 0:
            if self.telemetry.tracing:
                self._setup_span = (self.telemetry.new_span_id(), self.sim.now)
            event = self.sim.schedule(
                self._setup_time / self._speed, self._on_setup_done, priority=1
            )
            self._active[_SETUP_SLOT] = _ActiveTask(
                slot=_SETUP_SLOT,
                event=event,
                speed=self._speed,
                stage_run=None,
                started_at=self.sim.now,
            )
        else:
            self._activate_sources()

    def set_speed(self, speed: float) -> None:
        """Apply a cluster-wide speed change (DVFS) to all in-flight tasks."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if not self.running:
            self._speed = float(speed)
            self._speed_since = self.sim.now
            return
        now = self.sim.now
        self._accumulate_sprint(now)
        old_speed = self._speed
        self._speed = float(speed)
        self._speed_since = now
        if old_speed == speed:
            return
        for slot, active in list(self._active.items()):
            remaining_wall = max(0.0, active.event.time - now)
            remaining_work = remaining_wall * active.speed
            active.event.cancel()
            if slot == _SETUP_SLOT:
                new_event = self.sim.schedule(
                    remaining_work / speed, self._on_setup_done, priority=1
                )
            else:
                new_event = self.sim.schedule(
                    remaining_work / speed, self._make_task_callback(slot), priority=1
                )
            # Mutate in place so fault fields (base/attempt/will_fail) survive.
            active.event = new_event
            active.speed = speed

    def evict(self) -> float:
        """Cancel all in-flight work; returns the wasted wall time of the attempt."""
        if not self.running:
            raise RuntimeError("cannot evict a DAG execution that is not running")
        now = self.sim.now
        self._accumulate_sprint(now)
        if self.telemetry.tracing:
            for active in self._active.values():
                if active.span_id and active.stage_run is not None:
                    self._emit_task_span(active, outcome="evicted")
            for run in self._runs.values():
                if run.span_id and run.ready_seq >= 0 and not run.done:
                    self._emit_stage_span(run, outcome="evicted")
            if self._setup_span is not None:
                self._emit_setup_span(outcome="evicted")
        for active in self._active.values():
            active.event.cancel()
        self._active.clear()
        for event, _base, _attempt, _run in self._retries.values():
            event.cancel()
        self._retries.clear()
        self.evicted = True
        return now - (self.start_time if self.start_time is not None else now)

    # -------------------------------------------------------------- internals
    def _accumulate_sprint(self, now: float) -> None:
        if self._speed_since is not None and self._speed > 1.0:
            self.sprinted_time += now - self._speed_since
        self._speed_since = now

    def _emit_setup_span(self, outcome: str = "completed") -> None:
        span_id, started = self._setup_span  # type: ignore[misc]
        self._setup_span = None
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=span_id,
            parent_id=self.trace_parent,
            name="setup",
            cat="stage",
            start=started,
            job_id=self.job.job_id,
            stage=-1,
            parents="",
            outcome=outcome,
        )

    def _emit_stage_span(self, run: StageRun, outcome: str = "completed") -> None:
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=run.span_id,
            parent_id=self.trace_parent,
            name="stage",
            cat="stage",
            start=run.activated_at,
            job_id=self.job.job_id,
            stage=run.index,
            parents=",".join(str(p) for p in run.stage.parents),
            pred=self.analysis.durations[run.index],
            outcome=outcome,
        )

    def _emit_task_span(self, active: _ActiveTask, outcome: str = "completed") -> None:
        run = active.stage_run
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=active.span_id,
            parent_id=run.span_id if run is not None else self.trace_parent,
            name="task",
            cat="task",
            start=active.started_at,
            job_id=self.job.job_id,
            slot=active.slot,
            stage=run.index if run is not None else -1,
            outcome=outcome,
        )

    def _on_setup_done(self, _sim: Simulator) -> None:
        if not self.running:
            return
        self._active.pop(_SETUP_SLOT, None)
        if self._setup_span is not None:
            self._emit_setup_span()
        self._activate_sources()

    def _activate_sources(self) -> None:
        for index in self.job.dag.sources():
            self._activate_stage(self._runs[index])
        if self._remaining_stages == 0:
            self._finish()
            return
        self._fill_slots()

    def _activate_stage(self, run: StageRun) -> None:
        """Mark ``run`` ready; stages emptied by dropping complete in cascade."""
        tracing = self.telemetry.tracing
        stack = [run]
        while stack:
            current = stack.pop()
            current.activate(self._ready_counter)
            self._ready_counter += 1
            if tracing:
                current.span_id = self.telemetry.new_span_id()
                current.activated_at = self.sim.now
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "stage_scheduled",
                    self.sim.now,
                    src=self.telemetry_src,
                    job_id=self.job.job_id,
                    stage=current.index,
                    pending_tasks=current.pending_tasks,
                )
            if current.done:
                # Emptied by dropping: record a zero-length stage span so the
                # observed DAG stays structurally complete.
                if tracing:
                    self._emit_stage_span(current)
                self._remaining_stages -= 1
                for child_index in self.job.dag.children(current.index):
                    child = self._runs[child_index]
                    child.unfinished_parents -= 1
                    if child.unfinished_parents == 0:
                        stack.append(child)

    def _fill_slots(self) -> None:
        hook = self._decision_hook
        while self._free_slots:
            eligible = [run for run in self._runs.values() if run.dispatchable]
            if not eligible:
                break
            if hook is None:
                run = self.scheduler.select(eligible)
            else:
                choice = hook(
                    DecisionPoint(STAGE, self.sim.now, eligible, self.job, self)
                )
                if not 0 <= choice < len(eligible):
                    raise ValueError(
                        f"decision hook returned invalid stage index {choice} "
                        f"for {len(eligible)} dispatchable stage(s)"
                    )
                run = eligible[choice]
            slot = self._free_slots.pop()
            duration = run.pop_task()
            if self._faults is not None:
                self._start_task(slot, run, duration, attempt=1)
                continue
            event = self.sim.schedule(
                duration / self._speed, self._make_task_callback(slot), priority=1
            )
            self._active[slot] = _ActiveTask(
                slot=slot,
                event=event,
                speed=self._speed,
                stage_run=run,
                started_at=self.sim.now,
                span_id=self.telemetry.new_span_id() if self.telemetry.tracing else 0,
            )

    def _start_task(self, slot: int, run: StageRun, base: float, attempt: int) -> None:
        """Dispatch one attempt of a task under fault injection.

        Draw order is fixed (slowdown, then failure) so the fault streams
        advance identically regardless of scheduling interleavings.
        """
        faults = self._faults
        slowdown = faults.draw_slowdown()
        will_fail = faults.draw_task_failure()
        event = self.sim.schedule(
            (base * slowdown) / self._speed, self._make_task_callback(slot), priority=1
        )
        self._active[slot] = _ActiveTask(
            slot=slot,
            event=event,
            speed=self._speed,
            stage_run=run,
            started_at=self.sim.now,
            span_id=self.telemetry.new_span_id() if self.telemetry.tracing else 0,
            base=base,
            attempt=attempt,
            will_fail=will_fail,
        )
        if slowdown > 1.0 and self.telemetry.enabled:
            self.telemetry.emit(
                "fault.straggler",
                self.sim.now,
                src=self.telemetry_src,
                job_id=self.job.job_id,
                slot=slot,
                slowdown=slowdown,
            )

    def _make_task_callback(self, slot: int) -> Callable[[Simulator], None]:
        def _callback(_sim: Simulator) -> None:
            self._on_task_done(slot)

        return _callback

    def _on_task_done(self, slot: int) -> None:
        if not self.running:
            return
        active = self._active.pop(slot, None)
        if active is None:
            return
        if self._faults is not None and active.will_fail:
            self._on_task_failed(active)
            return
        if active.span_id:
            self._emit_task_span(active)
        self._free_slots.append(slot)
        run = active.stage_run
        if run is not None and run.task_finished():
            if run.span_id:
                self._emit_stage_span(run)
            self._remaining_stages -= 1
            for child_index in self.job.dag.children(run.index):
                child = self._runs[child_index]
                child.unfinished_parents -= 1
                if child.unfinished_parents == 0:
                    self._activate_stage(child)
        if self._remaining_stages == 0 and not self._active and not self._retries:
            self._finish()
            return
        self._fill_slots()

    # ----------------------------------------------------- failure machinery
    def _on_task_failed(self, active: _ActiveTask) -> None:
        """A pre-drawn transient failure surfaced at the task's end time."""
        faults = self._faults
        faults.note_task_failure()
        slot, run = active.slot, active.stage_run
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.task_fail",
                self.sim.now,
                src=self.telemetry_src,
                job_id=self.job.job_id,
                slot=slot,
                attempt=active.attempt,
            )
        if active.span_id:
            self._emit_task_span(active, outcome="failed")
        if active.attempt <= faults.max_retries:
            delay = faults.retry_delay(active.attempt)
            faults.note_retry()
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.retry",
                    self.sim.now,
                    src=self.telemetry_src,
                    job_id=self.job.job_id,
                    slot=slot,
                    attempt=active.attempt + 1,
                    delay=delay,
                )
            self._emit_fault_span("retry", slot)
            event = self.sim.schedule(
                delay, self._make_retry_callback(slot), priority=1
            )
            # The slot sits out the backoff: neither free nor active, and the
            # stage's in-flight count stays up so it cannot advance phase.
            self._retries[slot] = (event, active.base, active.attempt + 1, run)
            return
        if self._on_give_up is not None:
            self._on_give_up(self)
            return
        # No controller hook: requeue the task and let the frontier retry it.
        run.active -= 1
        run.pending.append(active.base)
        run._undispatched += active.base
        self._free_slots.append(slot)
        self._fill_slots()

    def _make_retry_callback(self, slot: int) -> Callable[[Simulator], None]:
        def _callback(_sim: Simulator) -> None:
            if not self.running:
                return
            entry = self._retries.pop(slot, None)
            if entry is None:
                return
            _event, base, attempt, run = entry
            # pop_task() already counted this task in-flight on the first
            # attempt; re-dispatch directly without touching the stage state.
            self._start_task(slot, run, base, attempt)

        return _callback

    def _requeue_lost_task(self, run: StageRun, base: float) -> None:
        run.active -= 1
        run.pending.append(base)
        run._undispatched += base

    def on_worker_crash(self, worker: int) -> None:
        """Requeue every task the crashed worker was running or retrying."""
        if not self.running:
            return
        self._emit_fault_span("crash", slot=-1)
        dead = set(self.cluster.worker_slots(worker))
        for slot in sorted(dead):
            active = self._active.pop(slot, None)
            if active is not None:
                active.event.cancel()
                if active.span_id:
                    self._emit_task_span(active, outcome="crashed")
                if active.stage_run is not None:
                    self._requeue_lost_task(active.stage_run, active.base)
                continue
            entry = self._retries.pop(slot, None)
            if entry is not None:
                event, base, _attempt, run = entry
                event.cancel()
                self._requeue_lost_task(run, base)
        self._free_slots = [s for s in self._free_slots if s not in dead]
        self._fill_slots()

    def on_worker_repair(self, worker: int) -> None:
        """Return the repaired worker's slots to the free pool."""
        if not self.running:
            return
        for slot in self.cluster.worker_slots(worker):
            if (
                slot not in self._active
                and slot not in self._retries
                and slot not in self._free_slots
            ):
                self._free_slots.append(slot)
        self._fill_slots()

    def _emit_fault_span(self, name: str, slot: int) -> None:
        if not self.telemetry.tracing:
            return
        now = self.sim.now
        self.telemetry.emit(
            "span",
            now,
            src=self.telemetry_src,
            span_id=self.telemetry.new_span_id(),
            parent_id=self.trace_parent,
            name=name,
            cat="fault",
            start=now,
            job_id=self.job.job_id,
            slot=slot,
        )

    def _finish(self) -> None:
        now = self.sim.now
        self._accumulate_sprint(now)
        self.completed = True
        self.completion_time = now
        self.on_complete(self)
