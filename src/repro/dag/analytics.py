"""Critical-path and slack analytics for stage DAGs.

Classic PERT-style analysis over a :class:`~repro.dag.graph.StageDAG`:

* the *duration* of a stage on ``C`` slots is its wave-scheduled makespan
  (map waves + shuffle + reduce waves, the same LPT bound the linear engine
  uses);
* forward pass → earliest start/finish per stage, whose maximum is the
  **critical-path length**: no stage scheduler can finish the DAG faster;
* backward pass → latest finish and per-stage **slack** (how long a stage may
  be delayed without stretching the critical path);
* the **lower-bound makespan** combines the critical path with the total-work
  bound ``Σ work / C`` — whichever binds.

The slack signal has two consumers: the ``critical_path_first`` stage
scheduler (prioritise zero-slack stages when slots are scarce) and
:func:`slack_biased_drop_ratios`, which shifts a class's task dropping toward
off-critical-path stages so approximation costs accuracy, not latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dag.graph import DagStage, StageDAG
from repro.engine.job import wave_time


def stage_duration(
    stage: DagStage,
    slots: int,
    map_durations: Optional[Sequence[float]] = None,
    reduce_durations: Optional[Sequence[float]] = None,
) -> float:
    """Wave-scheduled makespan of one stage on ``slots`` slots.

    Kept task durations may be passed explicitly (after dropping); the shuffle
    counts only when the stage actually runs reduce tasks, matching
    :func:`~repro.engine.execution.build_phases`.
    """
    if slots <= 0:
        raise ValueError("slots must be positive")
    maps = stage.map_task_times if map_durations is None else list(map_durations)
    reduces = (
        stage.reduce_task_times if reduce_durations is None else list(reduce_durations)
    )
    total = wave_time(maps, slots)
    if reduces:
        if stage.shuffle_time > 0:
            total += stage.shuffle_time
        total += wave_time(reduces, slots)
    return total


@dataclass
class CriticalPathAnalysis:
    """The full forward/backward pass over one DAG."""

    slots: int
    durations: Dict[int, float]
    earliest_start: Dict[int, float]
    earliest_finish: Dict[int, float]
    latest_finish: Dict[int, float]
    slack: Dict[int, float]
    critical_path: Tuple[int, ...]
    total_work: float

    @property
    def critical_path_length(self) -> float:
        """Length of the longest dependency chain (seconds)."""
        return max(self.earliest_finish.values()) if self.earliest_finish else 0.0

    @property
    def work_bound(self) -> float:
        """Total task work divided by the slot count."""
        return self.total_work / self.slots

    @property
    def lower_bound_makespan(self) -> float:
        """No schedule on ``slots`` slots can beat this makespan."""
        return max(self.critical_path_length, self.work_bound)

    def is_critical(self, index: int, tolerance: float = 1e-9) -> bool:
        return self.slack[index] <= tolerance


def _resolve_durations(
    dag: StageDAG, slots: int, overrides: Optional[Mapping[int, float]]
) -> Dict[int, float]:
    """Per-stage durations on ``slots`` slots, honouring explicit overrides."""
    durations: Dict[int, float] = {}
    for stage in dag:
        if overrides is not None and stage.index in overrides:
            durations[stage.index] = float(overrides[stage.index])
        else:
            durations[stage.index] = stage_duration(stage, slots)
    return durations


def analyze_critical_path(
    dag: StageDAG,
    slots: int,
    stage_durations: Optional[Mapping[int, float]] = None,
) -> CriticalPathAnalysis:
    """Run the PERT forward/backward pass over ``dag`` on ``slots`` slots.

    ``stage_durations`` overrides the per-stage wave durations (e.g. to
    analyse the DAG *after* task dropping); by default each stage's full task
    list is used.
    """
    durations = _resolve_durations(dag, slots, stage_durations)

    earliest_start: Dict[int, float] = {}
    earliest_finish: Dict[int, float] = {}
    for index in dag.topological_order():
        start = max(
            (earliest_finish[p] for p in dag.parents(index)), default=0.0
        )
        earliest_start[index] = start
        earliest_finish[index] = start + durations[index]

    horizon = max(earliest_finish.values())
    latest_finish: Dict[int, float] = {}
    for index in reversed(dag.topological_order()):
        children = dag.children(index)
        if not children:
            latest_finish[index] = horizon
        else:
            latest_finish[index] = min(
                latest_finish[c] - durations[c] for c in children
            )
    slack = {
        index: latest_finish[index] - earliest_finish[index]
        for index in durations
    }

    # Walk the path backwards from the latest-finishing sink, at each step
    # following the parent that determined the earliest start.
    tail = max(earliest_finish, key=lambda i: (earliest_finish[i], i))
    path: List[int] = [tail]
    while dag.parents(path[-1]):
        parents = dag.parents(path[-1])
        path.append(max(parents, key=lambda p: (earliest_finish[p], p)))
    path.reverse()

    return CriticalPathAnalysis(
        slots=slots,
        durations=durations,
        earliest_start=earliest_start,
        earliest_finish=earliest_finish,
        latest_finish=latest_finish,
        slack=slack,
        critical_path=tuple(path),
        total_work=dag.total_work(),
    )


def observed_critical_path(
    finish_times: Mapping[int, float],
    parents: Mapping[int, Sequence[int]],
) -> Tuple[int, ...]:
    """Reconstruct the *observed* critical path from measured stage finishes.

    The PERT pass above predicts the critical path from estimated durations;
    this is its a-posteriori counterpart over what actually happened — e.g.
    per-stage finish times recovered from trace spans.  Starting at the
    last-finishing stage, each step follows the parent that finished last
    (the dependency that actually gated the stage's start).  Ties break on
    the higher stage index, matching :func:`analyze_critical_path`.
    """
    if not finish_times:
        return ()
    tail = max(finish_times, key=lambda i: (finish_times[i], i))
    path: List[int] = [tail]
    while True:
        observed_parents = [
            p for p in parents.get(path[-1], ()) if p in finish_times
        ]
        if not observed_parents:
            break
        path.append(max(observed_parents, key=lambda p: (finish_times[p], p)))
    path.reverse()
    return tuple(path)


def upward_ranks(
    dag: StageDAG, slots: int, stage_durations: Optional[Mapping[int, float]] = None
) -> Dict[int, float]:
    """HEFT-style upward rank: longest remaining path from each stage to a sink.

    ``rank[s] = duration[s] + max(rank[child])`` — the quantity the
    ``critical_path_first`` scheduler maximises when picking which ready stage
    receives free slots.
    """
    analysis_durations = _resolve_durations(dag, slots, stage_durations)
    ranks: Dict[int, float] = {}
    for index in reversed(dag.topological_order()):
        best_child = max((ranks[c] for c in dag.children(index)), default=0.0)
        ranks[index] = analysis_durations[index] + best_child
    return ranks


def slack_biased_drop_ratios(
    dag: StageDAG,
    base_ratio: float,
    slots: int,
    bias: float = 1.0,
    max_ratio: float = 0.9,
) -> Dict[int, float]:
    """Per-stage drop ratios that shift dropping off the critical path.

    The uniform policy drops ``base_ratio`` of every droppable stage's tasks.
    Here, each droppable stage's ratio is reweighted by its slack while the
    task-weighted mean ratio (the class's accuracy budget) stays fixed.  With
    ``bias > 0`` zero-slack (critical) stages drop *less* and high-slack
    stages drop *more*: in the slot-constrained (work-bound) regime — where
    total work over ``C`` slots, not the critical path, determines the
    makespan — shifting drops off the critical path costs no latency and
    leaves the longest dependency chain's tasks intact, so the schedule stays
    robust when task-time estimates err.  ``bias < 0`` inverts the weighting
    (concentrate dropping *on* the critical path), which shortens the
    critical-path bound directly and is the latency-optimal choice when the
    critical path binds.

    ``bias`` controls the strength (0 = uniform); ratios are clamped to
    ``[0, max_ratio]``.
    """
    if not 0.0 <= base_ratio < 1.0:
        raise ValueError("base_ratio must be in [0, 1)")
    droppable = [stage for stage in dag if stage.droppable]
    ratios: Dict[int, float] = {
        stage.index: 0.0 for stage in dag if not stage.droppable
    }
    if not droppable or base_ratio == 0.0:
        ratios.update({stage.index: base_ratio for stage in droppable})
        return ratios

    analysis = analyze_critical_path(dag, slots)
    max_slack = max(analysis.slack[stage.index] for stage in droppable)
    if max_slack <= 0.0:
        # Fully serial DAG: no off-critical work to shift onto.
        ratios.update({stage.index: base_ratio for stage in droppable})
        return ratios

    weights = {
        stage.index: max(
            0.0, 1.0 + bias * (analysis.slack[stage.index] / max_slack - 0.5)
        )
        for stage in droppable
    }
    # Normalise so the task-weighted mean ratio matches the uniform policy.
    work = {stage.index: stage.total_work() for stage in droppable}
    total_work = sum(work.values())
    weighted = sum(weights[i] * work[i] for i in weights)
    if weighted <= 0 or total_work <= 0:
        ratios.update({stage.index: base_ratio for stage in droppable})
        return ratios
    scale = total_work / weighted
    for stage in droppable:
        ratios[stage.index] = min(
            max_ratio, max(0.0, base_ratio * weights[stage.index] * scale)
        )
    return ratios
