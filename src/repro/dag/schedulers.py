"""Pluggable stage schedulers: which ready stage gets free slots.

When a DAG job runs on the cluster, several stages can be ready at once and
together hold more pending tasks than there are free computing slots.  A
:class:`StageScheduler` decides, one task at a time, which ready stage the
next free slot serves — the DAG-level analogue of the fleet layer's routing
dispatchers.

Implemented policies
--------------------
* :class:`FifoStageScheduler` — serve stages in the order they became ready
  (ties by stage index); the work-conserving baseline.
* :class:`CriticalPathFirstScheduler` — serve the ready stage with the
  largest HEFT-style upward rank (longest remaining path to a sink), i.e.
  keep the critical path moving and let off-path stages fill leftover slots.
* :class:`ShortestRemainingWorkScheduler` — serve the stage with the least
  undispatched work (SRPT-flavoured; drains narrow stages fast to unlock
  their children).
* :class:`WidestFirstScheduler` — serve the stage with the most pending
  tasks, maximising immediate slot occupancy.

All schedulers are deterministic: candidates are presented in (ready-order,
stage-index) order and every tie falls back to that order, so two runs with
the same seed produce byte-identical traces.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol, Sequence, Union


class StageRunView(Protocol):
    """What a stage scheduler may observe about one runnable stage."""

    @property
    def index(self) -> int:
        """Stage index within the job's DAG."""

    @property
    def ready_seq(self) -> int:
        """Monotonic counter of when the stage became ready."""

    @property
    def rank(self) -> float:
        """Upward rank (critical-path distance to a sink, seconds)."""

    @property
    def pending_tasks(self) -> int:
        """Tasks of the current phase not yet dispatched."""

    def remaining_work(self) -> float:
        """Undispatched task work left in this stage (seconds)."""


class StageScheduler:
    """Base class: pick the ready stage the next free slot should serve."""

    name = "stage-scheduler"

    def select(self, ready: Sequence[StageRunView]) -> StageRunView:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class FifoStageScheduler(StageScheduler):
    """First-ready-first-served (ties broken by stage index)."""

    name = "fifo"

    def select(self, ready: Sequence[StageRunView]) -> StageRunView:
        return min(ready, key=lambda run: (run.ready_seq, run.index))


class CriticalPathFirstScheduler(StageScheduler):
    """Largest upward rank first — keep the critical path supplied with slots."""

    name = "critical_path_first"

    def select(self, ready: Sequence[StageRunView]) -> StageRunView:
        return min(ready, key=lambda run: (-run.rank, run.ready_seq, run.index))


class ShortestRemainingWorkScheduler(StageScheduler):
    """Least undispatched work first — drain narrow stages to unlock children."""

    name = "shortest_remaining_work"

    def select(self, ready: Sequence[StageRunView]) -> StageRunView:
        return min(
            ready, key=lambda run: (run.remaining_work(), run.ready_seq, run.index)
        )


class WidestFirstScheduler(StageScheduler):
    """Most pending tasks first — maximise immediate slot occupancy."""

    name = "widest_first"

    def select(self, ready: Sequence[StageRunView]) -> StageRunView:
        return min(
            ready, key=lambda run: (-run.pending_tasks, run.ready_seq, run.index)
        )


#: Scheduler names accepted by :func:`make_stage_scheduler` (and the CLI).
STAGE_SCHEDULERS = (
    "fifo",
    "critical_path_first",
    "shortest_remaining_work",
    "widest_first",
)

_FACTORIES: Dict[str, Callable[[], StageScheduler]] = {
    "fifo": FifoStageScheduler,
    "critical_path_first": CriticalPathFirstScheduler,
    "shortest_remaining_work": ShortestRemainingWorkScheduler,
    "widest_first": WidestFirstScheduler,
}


def make_stage_scheduler(name: Union[str, StageScheduler]) -> StageScheduler:
    """Build a stage scheduler by name (idempotent on scheduler instances)."""
    if isinstance(name, StageScheduler):
        return name
    key = str(name).strip().lower().replace("-", "_")
    factory = _FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown stage scheduler {name!r}; expected one of "
            f"{', '.join(STAGE_SCHEDULERS)}"
        )
    return factory()
