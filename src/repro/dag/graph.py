"""Stage-dependency jobs: the :class:`StageDAG` / :class:`DagJob` model.

The paper's DiAS engine models a job as a *linear* chain of map/reduce stage
pairs (:class:`~repro.engine.job.StageSpec` sequences).  Real multi-priority
engines — Spark/GraphX query plans, SQL physical plans, ML pipelines — execute
**stage DAGs**: a stage becomes runnable only once all of its parent stages
have completed, and independent branches run concurrently on the cluster's
slots.

:class:`DagStage` extends :class:`~repro.engine.job.StageSpec` with dependency
edges (``parents``), so everything that understands plain stages — the task
dropper, the accuracy model, the wave-time maths — keeps working unchanged on
DAG jobs.  :class:`StageDAG` validates the edge structure (existing parents,
no self-loops, acyclicity via Kahn's algorithm) and provides deterministic
topological iteration; a linear chain is just the special case where stage
``i`` depends on stage ``i − 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.engine.job import StageSpec
from repro.engine.profiles import JobClassProfile


@dataclass
class DagStage(StageSpec):
    """One map/reduce stage with dependency edges.

    ``parents`` lists the indices of the stages that must complete before this
    stage becomes runnable; an empty tuple marks a source stage.  ``name`` is
    a human-readable label (e.g. ``"shuffle-map-3"`` or ``"result"``).
    """

    parents: Tuple[int, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.parents = tuple(int(p) for p in self.parents)
        if self.index in self.parents:
            raise ValueError(f"stage {self.index} cannot depend on itself")
        if len(set(self.parents)) != len(self.parents):
            raise ValueError(f"stage {self.index} lists a duplicate parent")


class StageDAG:
    """A validated DAG of :class:`DagStage` objects.

    Construction checks that stage indices are unique, that every parent
    reference resolves, and that the dependency graph is acyclic (Kahn's
    algorithm).  The topological order is deterministic: among simultaneously
    ready stages, lower indices come first.
    """

    def __init__(self, stages: Sequence[DagStage]) -> None:
        if not stages:
            raise ValueError("a DAG needs at least one stage")
        self._stages: Dict[int, DagStage] = {}
        for stage in stages:
            if stage.index in self._stages:
                raise ValueError(f"duplicate stage index {stage.index}")
            self._stages[stage.index] = stage
        self._children: Dict[int, List[int]] = {index: [] for index in self._stages}
        for stage in stages:
            for parent in stage.parents:
                if parent not in self._stages:
                    raise ValueError(
                        f"stage {stage.index} depends on unknown stage {parent}"
                    )
                self._children[parent].append(stage.index)
        for children in self._children.values():
            children.sort()
        self._order = self._topological_sort()

    # ------------------------------------------------------------ validation
    def _topological_sort(self) -> List[int]:
        indegree = {index: len(stage.parents) for index, stage in self._stages.items()}
        ready = sorted(index for index, degree in indegree.items() if degree == 0)
        order: List[int] = []
        while ready:
            index = ready.pop(0)
            order.append(index)
            inserted = False
            for child in self._children[index]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self._stages):
            cyclic = sorted(index for index, degree in indegree.items() if degree > 0)
            raise ValueError(f"stage dependencies contain a cycle involving {cyclic}")
        return order

    # -------------------------------------------------------------- topology
    @property
    def num_stages(self) -> int:
        return len(self._stages)

    @property
    def num_edges(self) -> int:
        return sum(len(stage.parents) for stage in self._stages.values())

    def stage(self, index: int) -> DagStage:
        return self._stages[index]

    @property
    def stages(self) -> List[DagStage]:
        """All stages in (deterministic) topological order."""
        return [self._stages[index] for index in self._order]

    def __iter__(self) -> Iterator[DagStage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self._stages)

    def topological_order(self) -> List[int]:
        return list(self._order)

    def parents(self, index: int) -> Tuple[int, ...]:
        return self._stages[index].parents

    def children(self, index: int) -> List[int]:
        return list(self._children[index])

    def sources(self) -> List[int]:
        """Stages with no parents, in index order."""
        return sorted(i for i, stage in self._stages.items() if not stage.parents)

    def sinks(self) -> List[int]:
        """Stages with no children, in index order."""
        return sorted(i for i, children in self._children.items() if not children)

    @property
    def is_linear_chain(self) -> bool:
        """True when the DAG degenerates to today's linear stage sequence."""
        order = self._order
        for position, index in enumerate(order):
            expected = (order[position - 1],) if position > 0 else ()
            if self._stages[index].parents != expected:
                return False
        return True

    # --------------------------------------------------------------- metrics
    def total_work(self) -> float:
        """Total slot-seconds of task work across all stages (no dropping)."""
        return sum(stage.total_work() for stage in self._stages.values())

    def depth(self) -> int:
        """Number of stages on the longest dependency chain (by count)."""
        depths: Dict[int, int] = {}
        for index in self._order:
            stage = self._stages[index]
            depths[index] = 1 + max((depths[p] for p in stage.parents), default=0)
        return max(depths.values())


@dataclass
class DagJob:
    """A concrete DAG-structured job instance submitted to the scheduler.

    Exposes the same surface :class:`~repro.engine.job.Job` offers where it
    matters — ``stages`` (in topological order), task counts, ``setup_time``,
    ``total_work`` — so the task dropper and the metrics layer work on DAG
    jobs without modification.
    """

    job_id: int
    priority: int
    arrival_time: float
    size_mb: float
    dag: StageDAG
    profile: JobClassProfile
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError("job size must be positive")

    @property
    def stages(self) -> List[DagStage]:
        """The job's stages in topological order (dropper-compatible view)."""
        return self.dag.stages

    @property
    def num_stages(self) -> int:
        return self.dag.num_stages

    @property
    def num_map_tasks(self) -> int:
        return sum(stage.num_map_tasks for stage in self.dag.stages)

    @property
    def num_reduce_tasks(self) -> int:
        return sum(stage.num_reduce_tasks for stage in self.dag.stages)

    def setup_time(self, drop_ratio: float = 0.0) -> float:
        """Setup/overhead time of this job under ``drop_ratio``."""
        return self.profile.setup_time(drop_ratio)

    def total_work(self) -> float:
        """Total slot-seconds of task work (no dropping, base frequency)."""
        return self.dag.total_work()

    def ideal_service_time(self, slots: int, drop_ratio: float = 0.0) -> float:
        """Cheap service-time estimate: critical path vs. work bound + setup.

        Like the linear :meth:`~repro.engine.job.Job.ideal_service_time`,
        ``drop_ratio`` prunes each droppable stage to its kept-task prefix
        before the bound is computed.  Used for load bookkeeping
        (``work_left``-style queries); the actual makespan depends on the
        stage scheduler and lies between this lower bound and the sequential
        sum of stage times.
        """
        from repro.dag.analytics import analyze_critical_path, stage_duration
        from repro.engine.job import effective_task_count

        if slots <= 0:
            raise ValueError("slots must be positive")
        durations = None
        if drop_ratio > 0.0:
            durations = {}
            for stage in self.dag:
                kept = effective_task_count(
                    stage.num_map_tasks, drop_ratio if stage.droppable else 0.0
                )
                durations[stage.index] = stage_duration(
                    stage, slots, map_durations=stage.map_task_times[:kept]
                )
        analysis = analyze_critical_path(self.dag, slots, stage_durations=durations)
        return self.setup_time(drop_ratio) + analysis.lower_bound_makespan
