"""DiAS on stage DAGs: the DAG-aware controller and simulation driver.

:class:`DagSimulation` mirrors :class:`~repro.core.dias.DiASSimulation` — the
same priority buffers, non-preemptive (or preemptive) head-of-line
dispatching, per-class differential approximation, sprinting and energy
accounting — but each job is a :class:`~repro.dag.graph.DagJob` executed by a
:class:`~repro.dag.execution.DagExecution`, with a pluggable stage scheduler
choosing which ready stage gets free slots.

DiAS integration is per-stage: a class's drop ratio ``θ_k`` is applied to
every droppable stage of the DAG through
:meth:`~repro.core.dropper.TaskDropper.plan_stages`; with
``slack_biased=True`` the ratios are first reweighted by
:func:`~repro.dag.analytics.slack_biased_drop_ratios` so dropping
concentrates on off-critical-path stages at the same overall accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.buffers import PriorityBuffers
from repro.core.dias import SimulationResult, _dropped_task_seconds
from repro.core.dropper import DropPlan, TaskDropper
from repro.core.policies import SchedulingPolicy
from repro.core.sprinter import Sprinter
from repro.dag.analytics import slack_biased_drop_ratios
from repro.dag.execution import DagExecution
from repro.dag.graph import DagJob
from repro.dag.schedulers import StageScheduler, make_stage_scheduler
from repro.engine.cluster import Cluster
from repro.engine.energy import EnergyMeter
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec, parse_fault_spec
from repro.models.accuracy import AccuracyModel
from repro.simulation.decisions import DecisionHook
from repro.simulation.des import Simulator
from repro.simulation.metrics import JobRecord, MetricsCollector
from repro.simulation.random_streams import RandomStreams
from repro.telemetry import NULL_HUB, PeriodicSampler, TelemetryHub, kernel_sample_source


@dataclass
class DagSimulationResult(SimulationResult):
    """A :class:`~repro.core.dias.SimulationResult` plus DAG analytics."""

    scheduler_name: str = "fifo"
    dag_rows: List[Dict[str, float]] = field(default_factory=list)
    #: Online critical-path-stretch accumulators (kept in completion order,
    #: so the mean is bitwise-identical to the row-based computation; they
    #: also serve streaming runs, which retain no ``dag_rows``).
    cp_stretch_sum: float = 0.0
    cp_stretch_count: int = 0

    def mean_makespan(self, priority: Optional[int] = None) -> float:
        """Mean per-job makespan (execution wall time) in seconds."""
        if self.metrics.streaming:
            if priority is not None:
                cm = self.metrics.class_metrics(priority)
                return cm.execution_time.mean if cm.job_count else float("nan")
            total = jobs = 0.0
            for p in self.metrics.priorities():
                cm = self.metrics.class_metrics(p)
                total += cm.execution_time.mean * cm.job_count
                jobs += cm.job_count
            return total / jobs if jobs else float("nan")
        records = (
            self.metrics.records
            if priority is None
            else self.metrics.records_for_priority(priority)
        )
        if not records:
            return float("nan")
        return sum(r.execution_time for r in records) / len(records)

    def mean_critical_path_stretch(self) -> float:
        """Mean makespan over its per-job lower bound (1.0 = optimal)."""
        if not self.cp_stretch_count:
            return float("nan")
        return self.cp_stretch_sum / self.cp_stretch_count


class DagSimulation:
    """Simulates one scheduling policy over a fixed DAG-job trace.

    Parameters
    ----------
    policy:
        The DiAS scheduling policy (preemption, per-class drop ratios,
        sprinting) applied to the trace.
    jobs:
        The DAG-job trace (sorted by arrival time internally).
    scheduler:
        Stage-scheduler name or instance.  When a *name* is given, a fresh
        instance is built per dispatched job; a passed-in *instance* is
        shared across all jobs of the run, so it must not keep per-job
        state (the built-in schedulers are stateless).
    slack_biased:
        When ``True``, per-class drop ratios are reweighted by per-stage
        slack before planning which tasks to drop.
    job_source:
        Alternative to ``jobs``: a lazy, arrival-ordered iterable of
        :class:`DagJob` (e.g. a DAG-mode
        :class:`~repro.traces.replay.ReplaySource`) pulled one job at a time
        as the simulation advances.  Pair with ``streaming_metrics=True``
        for constant-memory replays (no per-job records or DAG rows kept).
    streaming_metrics:
        Collect metrics online (:class:`MetricsCollector` with
        ``streaming=True``) instead of retaining per-job records.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        jobs: Sequence[DagJob] = (),
        scheduler: Union[str, StageScheduler] = "fifo",
        cluster: Optional[Cluster] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        streams: Optional[RandomStreams] = None,
        seed: int = 0,
        slack_biased: bool = False,
        telemetry: TelemetryHub = NULL_HUB,
        faults: Union[str, FaultSpec, None] = None,
        job_source: Optional[Iterable[DagJob]] = None,
        streaming_metrics: bool = False,
        decision_hook: Optional[DecisionHook] = None,
    ) -> None:
        if job_source is not None:
            if jobs:
                raise ValueError("pass either jobs or job_source, not both")
        elif not jobs:
            raise ValueError("the DAG job trace must not be empty")
        self.policy = policy
        self.jobs = sorted(jobs, key=lambda j: j.arrival_time)
        self.job_source = job_source
        self._source_iter: Optional[Iterator[DagJob]] = None
        self._source_done = job_source is None
        self._arrived = 0
        self.cluster = cluster or Cluster()
        self.accuracy_model = accuracy_model or AccuracyModel.paper_default()
        self.streams = streams or RandomStreams(seed)
        self.slack_biased = slack_biased
        self._scheduler_spec = scheduler
        #: Optional external agent consulted at every stage decision of every
        #: execution; ``None`` keeps the built-in scheduler path untouched.
        self._decision_hook = decision_hook
        #: Invoked with every finished JobRecord; the decision environment
        #: uses it to attribute episode rewards (mirrors DiASSimulation).
        self.on_job_record: Optional[Callable[[JobRecord], None]] = None
        self.telemetry = telemetry
        self.telemetry_src = "dag"

        self.sim = Simulator(telemetry=telemetry)
        self.buffers = PriorityBuffers()
        # priority -> interned "depth_p{priority}" sample field name.
        self._depth_keys: Dict[int, str] = {}
        self.dropper = TaskDropper(self.streams.stream("dag/dropper"))
        self.metrics = MetricsCollector(streaming=True) if streaming_metrics else MetricsCollector()
        self.energy_meter = EnergyMeter(self.cluster.power_model, start_time=self.sim.now)
        self.sprinter: Optional[Sprinter] = None
        if policy.sprints:
            self.sprinter = Sprinter(
                self.sim,
                policy.sprint,
                on_sprint_start=self._on_sprint_start,
                on_sprint_end=self._on_sprint_end,
                telemetry=telemetry,
                telemetry_src=self.telemetry_src,
                on_sprint_denied=self._on_sprint_denied,
            )

        self.fault_spec = parse_fault_spec(faults)
        self.faults: Optional[FaultInjector] = None
        if self.fault_spec is not None:
            self.faults = FaultInjector(
                self.fault_spec,
                self.sim,
                self.cluster,
                self.streams,
                namespace="dag/",
                telemetry=telemetry,
                telemetry_src=self.telemetry_src,
                on_crash=self._on_worker_crash,
                on_repair=self._on_worker_repair,
            )

        self._running: Optional[DagExecution] = None
        self._running_plan: Optional[DropPlan] = None
        self._job_state: Dict[int, Dict[str, float]] = {}
        # Open-span bookkeeping (job/queue/attempt/sprint ids and start
        # times) per job while span tracing is on; empty otherwise.
        self._trace: Dict[int, Dict[str, Any]] = {}
        self._completed = 0
        self._total_evictions = 0
        self._sampler: Optional[PeriodicSampler] = None
        self.dag_rows: List[Dict[str, float]] = []
        self._cp_stretch_sum = 0.0
        self._cp_stretch_count = 0

    # --------------------------------------------------------------- queries
    @property
    def scheduler_name(self) -> str:
        return make_stage_scheduler(self._scheduler_spec).name

    @property
    def queue_length(self) -> int:
        return len(self.buffers) + (1 if self._running is not None else 0)

    @property
    def completed_jobs(self) -> int:
        return self._completed

    def telemetry_sample(self) -> Dict[str, float]:
        """Read-only snapshot for periodic samplers (no state mutation)."""
        # Mirrors DiASSimulation.telemetry_sample's frame-lean shape: one
        # depth pass, interned field names, integer counters left as ints.
        now = self.sim.now
        running = self._running
        busy = self.metrics.busy_time + self.metrics.wasted_time
        if running is not None and running.start_time is not None:
            busy += max(0.0, now - running.start_time)
        sample: Dict[str, float] = {
            "utilisation": (busy / now) if now > 0 else 0.0,
            "queue_depth": 0,
            "running": 1.0 if running is not None else 0.0,
            "completed_jobs": self._completed,
            "evictions": self._total_evictions,
        }
        depth_keys = self._depth_keys
        total_depth = 0
        for priority, depth in self.buffers.depth_rows():
            total_depth += depth
            key = depth_keys.get(priority)
            if key is None:
                key = depth_keys[priority] = f"depth_p{priority}"
            sample[key] = depth
        sample["queue_depth"] = total_depth
        meter = self.energy_meter
        sample["energy_joules"] = meter.projected_joules(now)
        sample["power_mode"] = meter._mode
        return sample

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> DagSimulationResult:
        """Run the whole trace to completion (or until the optional horizon)."""
        if self.job_source is not None:
            self._start_streaming()
        else:
            for job in self.jobs:
                self.sim.schedule_at(
                    job.arrival_time, self._make_arrival_callback(job), priority=0
                )
        if self.faults is not None and not self.faults.started:
            self.faults.start()
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                "run_start",
                self.sim.now,
                src=self.telemetry_src,
                run="dag",
                policy=self.policy.name,
                scheduler=self.scheduler_name,
            )
            if telemetry.sample_interval is not None:
                sampler = PeriodicSampler(
                    self.sim,
                    telemetry,
                    telemetry.sample_interval,
                    sources=[
                        (self.telemetry_src, self.telemetry_sample),
                        ("kernel", kernel_sample_source(self.sim)),
                    ],
                    should_continue=lambda: not self._drained(),
                )
                sampler.start()
                # Cancel the trailing tick at end-of-workload so sampling
                # never advances the clock past the unsampled run's end.
                self._sampler = sampler
        self.sim.run(until=until)
        result = self.finalize()
        if telemetry.enabled:
            telemetry.emit(
                "run_end",
                self.sim.now,
                src=self.telemetry_src,
                completed=self._completed,
                duration=self.sim.now,
            )
        return result

    def finalize(self) -> DagSimulationResult:
        """Close the books at the current simulated time and build the result."""
        self.energy_meter.advance(self.sim.now)
        self.metrics.set_observation_time(self.sim.now)
        account = self.energy_meter.account
        return DagSimulationResult(
            policy_name=self.policy.name,
            metrics=self.metrics,
            duration=self.sim.now,
            completed_jobs=self._completed,
            total_energy_joules=self.energy_meter.total_joules,
            sprinted_seconds=(
                self.sprinter.total_sprinted_seconds if self.sprinter is not None else 0.0
            ),
            evictions=self._total_evictions,
            idle_energy_joules=account.idle_joules,
            busy_energy_joules=account.busy_joules,
            sprint_energy_joules=account.sprint_joules,
            scheduler_name=self.scheduler_name,
            dag_rows=list(self.dag_rows),
            cp_stretch_sum=self._cp_stretch_sum,
            cp_stretch_count=self._cp_stretch_count,
            fault_counts=(
                dict(self.faults.counters) if self.faults is not None else {}
            ),
        )

    # ---------------------------------------------------------------- events
    def _drained(self) -> bool:
        """End-of-workload: every known job has arrived and completed."""
        if self.job_source is not None:
            return self._source_done and self._completed >= self._arrived
        return self._completed >= len(self.jobs)

    def _start_streaming(self) -> None:
        """Prime the chained-arrival pump from the streaming job source."""
        self._source_iter = iter(self.job_source)
        first = next(self._source_iter, None)
        if first is None:
            raise ValueError("the streaming job source yielded no jobs")
        self._schedule_streamed(first)

    def _schedule_streamed(self, job: DagJob) -> None:
        self.sim.schedule_at(
            job.arrival_time, self._make_streamed_callback(job), priority=0
        )

    def _make_streamed_callback(self, job: DagJob):
        def _callback(_sim: Simulator) -> None:
            # Pull and schedule the successor BEFORE admitting this job: at
            # equal timestamps the heap sequence then matches the batch
            # path, which pre-schedules all arrivals in trace order.
            successor = next(self._source_iter, None)
            if successor is None:
                self._source_done = True
            else:
                self._schedule_streamed(successor)
            self._on_arrival(job)

        return _callback

    def _make_arrival_callback(self, job: DagJob):
        def _callback(_sim: Simulator) -> None:
            self._on_arrival(job)

        return _callback

    def _on_arrival(self, job: DagJob) -> None:
        self._arrived += 1
        self._job_state[job.job_id] = {"wasted": 0.0, "evictions": 0}
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_admitted",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
            )
        if self.telemetry.tracing:
            # Open the job's root span and its first queue wait; both close
            # later (spans are emitted at close time, ids are stable now).
            self._trace[job.job_id] = {
                "job": self.telemetry.new_span_id(),
                "job_start": self.sim.now,
                "attempt": 0,
                "queue_id": self.telemetry.new_span_id(),
                "queue_start": self.sim.now,
            }
        self.buffers.push(job)
        if self._running is None:
            self._dispatch_next()
            return
        if self.policy.preemptive and job.priority > self._running.job.priority:
            self._evict_running()
            self._dispatch_next()

    def _stage_ratios(self, job: DagJob) -> Dict[int, float]:
        base = self.policy.map_drop_ratio(job.priority)
        if self.slack_biased and base > 0.0:
            return slack_biased_drop_ratios(job.dag, base, self.cluster.slots)
        return {stage.index: base for stage in job.dag if stage.droppable}

    def _dispatch_next(self) -> None:
        job = self.buffers.pop_highest()
        if job is None:
            self._running = None
            self._running_plan = None
            self.energy_meter.set_mode("idle", self.sim.now)
            return
        map_ratios = self._stage_ratios(job)
        reduce_base = self.policy.reduce_drop_ratio(job.priority)
        reduce_ratios = {
            stage.index: reduce_base for stage in job.dag if stage.droppable
        }
        plan = self.dropper.plan_stages(job, map_ratios, reduce_ratios)
        if self.telemetry.enabled:
            # kept_map_indices maps stage index -> kept task indices.
            kept = sum(len(idx) for idx in plan.kept_map_indices.values())
            self.telemetry.emit(
                "drop_decision",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                map_drop_ratio=plan.map_drop_ratio,
                reduce_drop_ratio=plan.reduce_drop_ratio,
                kept_map_tasks=kept,
                dropped_map_tasks=job.num_map_tasks - kept,
            )
        trace_parent = 0
        if self.telemetry.tracing:
            trace_parent = self._trace_dispatch(job, plan)
        self.cluster.set_sprinting(False)
        self.energy_meter.set_mode("busy", self.sim.now)
        execution = DagExecution(
            self.sim,
            self.cluster,
            job,
            scheduler=make_stage_scheduler(self._scheduler_spec),
            on_complete=self._on_complete,
            kept_map_indices=plan.kept_map_indices,
            kept_reduce_indices=plan.kept_reduce_indices,
            setup_drop_ratio=min(plan.map_drop_ratio, 0.9),
            telemetry=self.telemetry,
            telemetry_src=self.telemetry_src,
            trace_parent=trace_parent,
            faults=self.faults,
            on_give_up=(
                self._on_task_exhausted if self.faults is not None else None
            ),
            decision_hook=self._decision_hook,
        )
        self._running = execution
        self._running_plan = plan
        execution.start(speed=self.cluster.speed)
        if self.sprinter is not None:
            self.sprinter.on_dispatch(execution)

    # ------------------------------------------------------------ span probes
    def _trace_dispatch(self, job: DagJob, plan: DropPlan) -> int:
        """Close the queue span, open the attempt span, annotate the drop.

        Returns the attempt span id, which the :class:`DagExecution` uses as
        the parent of its stage/task spans.  Only called while tracing.
        """
        telemetry = self.telemetry
        now = self.sim.now
        state = self._trace[job.job_id]
        telemetry.emit(
            "span",
            now,
            src=self.telemetry_src,
            span_id=state.pop("queue_id"),
            parent_id=state["job"],
            name="queue_wait",
            cat="queue",
            start=state.pop("queue_start"),
            job_id=job.job_id,
            priority=job.priority,
        )
        state["attempt"] += 1
        attempt_id = telemetry.new_span_id()
        state["attempt_id"] = attempt_id
        state["attempt_start"] = now
        dropped_seconds = _dropped_task_seconds(job, plan)
        if dropped_seconds > 0.0:
            kept = sum(len(idx) for idx in plan.kept_map_indices.values()) + sum(
                len(idx) for idx in plan.kept_reduce_indices.values()
            )
            telemetry.emit(
                "span",
                now,
                src=self.telemetry_src,
                span_id=telemetry.new_span_id(),
                parent_id=attempt_id,
                name="drop",
                cat="drop",
                start=now,
                job_id=job.job_id,
                dropped_tasks=job.num_map_tasks + job.num_reduce_tasks - kept,
                salvaged=dropped_seconds / self.cluster.slots,
            )
        return attempt_id

    def _trace_attempt_end(self, execution: DagExecution, outcome: str) -> None:
        """Close the current attempt span; only called while tracing.

        DAG attempts carry PERT predictions alongside (``cp`` — the predicted
        critical path, ``cp_len`` — its length, ``lb`` — the lower-bound
        makespan) so reports can compare observed against predicted paths.
        """
        job = execution.job
        state = self._trace[job.job_id]
        self.telemetry.emit(
            "span",
            self.sim.now,
            src=self.telemetry_src,
            span_id=state.pop("attempt_id"),
            parent_id=state["job"],
            name="attempt",
            cat="attempt",
            start=state.pop("attempt_start"),
            job_id=job.job_id,
            attempt=state["attempt"],
            outcome=outcome,
            sprinted=execution.sprinted_time,
            cp=",".join(str(i) for i in execution.analysis.critical_path),
            cp_len=execution.analysis.critical_path_length,
            lb=execution.lower_bound_makespan,
        )

    def _evict_running(self) -> None:
        execution = self._running
        if execution is None:
            return
        if self.sprinter is not None:
            self.sprinter.on_job_end(execution)
        wasted = execution.evict()
        self.cluster.set_sprinting(False)
        job = execution.job
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_evicted",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                wasted=wasted,
            )
        if self.telemetry.tracing:
            now = self.sim.now
            trace_state = self._trace[job.job_id]
            self.telemetry.emit(
                "span",
                now,
                src=self.telemetry_src,
                span_id=self.telemetry.new_span_id(),
                parent_id=trace_state["attempt_id"],
                name="evict",
                cat="evict",
                start=now,
                job_id=job.job_id,
                wasted=wasted,
            )
            self._trace_attempt_end(execution, "evicted")
            # The job re-queues at this same instant: open the next wait.
            trace_state["queue_id"] = self.telemetry.new_span_id()
            trace_state["queue_start"] = now
        state = self._job_state[job.job_id]
        state["wasted"] += wasted
        state["evictions"] += 1
        self._total_evictions += 1
        self.buffers.push_front(job)
        self._running = None
        self._running_plan = None

    # ---------------------------------------------------------- fault recovery
    def _fault_restart(self, reason: str) -> None:
        """Re-execute the running job from scratch via the eviction path.

        Reusing :meth:`_evict_running` keeps the span tree and the
        re-execution latency decomposition valid: the lost attempt is closed
        as evicted and its wall time accounted as wasted/re-execution.
        """
        execution = self._running
        if execution is None:
            return
        job = execution.job
        if self.telemetry.tracing:
            # Annotate before eviction so the trace records *why* the
            # attempt was aborted, not just that it was evicted.
            self.telemetry.emit(
                "span",
                self.sim.now,
                src=self.telemetry_src,
                span_id=self.telemetry.new_span_id(),
                parent_id=execution.trace_parent,
                name=reason,
                cat="fault",
                start=self.sim.now,
                job_id=job.job_id,
                slot=-1,
            )
        self._evict_running()
        self.faults.note_job_restart()
        if self.telemetry.enabled:
            self.telemetry.emit(
                "fault.job_restart",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                reason=reason,
            )

    def _on_task_exhausted(self, execution: DagExecution) -> None:
        """A task burnt through its retry budget: restart the whole job."""
        self._fault_restart("retries_exhausted")
        self._dispatch_next()

    def _on_worker_crash(self, worker: int) -> None:
        execution = self._running
        if execution is None:
            return
        if self.faults.crash_recovery == "restart":
            self._fault_restart("crash")
            self._dispatch_next()
            return
        execution.on_worker_crash(worker)

    def _on_worker_repair(self, worker: int) -> None:
        execution = self._running
        if execution is not None:
            execution.on_worker_repair(worker)

    def _on_complete(self, execution: DagExecution) -> None:
        if self.sprinter is not None:
            self.sprinter.on_job_end(execution)
        self.cluster.set_sprinting(False)
        job = execution.job
        plan = self._running_plan
        # Pop per-job bookkeeping so long streaming replays stay bounded.
        state = self._job_state.pop(job.job_id)
        effective_drop = plan.effective_drop_ratio if plan is not None else 0.0
        record = JobRecord(
            job_id=job.job_id,
            priority=job.priority,
            arrival_time=job.arrival_time,
            start_time=execution.start_time if execution.start_time is not None else job.arrival_time,
            completion_time=self.sim.now,
            execution_time=execution.elapsed,
            wasted_time=state["wasted"],
            evictions=int(state["evictions"]),
            drop_ratio=effective_drop,
            accuracy_loss=self.accuracy_model.error(min(effective_drop, 1.0)),
            sprinted_time=execution.sprinted_time,
            size_mb=job.size_mb,
            num_map_tasks=job.num_map_tasks,
            num_reduce_tasks=job.num_reduce_tasks,
        )
        self.metrics.record_job(record)
        if self.on_job_record is not None:
            self.on_job_record(record)
        self.metrics.record_busy_time(execution.elapsed)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "job_completed",
                self.sim.now,
                src=self.telemetry_src,
                job_id=job.job_id,
                priority=job.priority,
                response_time=record.response_time,
                execution_time=record.execution_time,
                drop_ratio=record.drop_ratio,
            )
        if self.telemetry.tracing:
            self._trace_attempt_end(execution, "completed")
            trace_state = self._trace.pop(job.job_id)
            self.telemetry.emit(
                "span",
                self.sim.now,
                src=self.telemetry_src,
                span_id=trace_state["job"],
                parent_id=0,
                name="job",
                cat="job",
                start=trace_state["job_start"],
                job_id=job.job_id,
                priority=job.priority,
            )
        lower_bound = execution.lower_bound_makespan
        cp_stretch = execution.elapsed / lower_bound if lower_bound > 0 else 1.0
        self._cp_stretch_sum += cp_stretch
        self._cp_stretch_count += 1
        if not self.metrics.streaming:
            self.dag_rows.append(
                {
                    "job_id": job.job_id,
                    "priority": job.priority,
                    "stages": job.num_stages,
                    "makespan_s": execution.elapsed,
                    "lower_bound_s": lower_bound,
                    "cp_stretch": cp_stretch,
                    "critical_path_len": len(execution.analysis.critical_path),
                }
            )
        self._completed += 1
        if self._drained():
            if self._sampler is not None:
                self._sampler.stop()
            if self.faults is not None:
                # Cancel the open-ended crash/repair renewal process so the
                # event heap can empty once the workload has drained.
                self.faults.stop()
        self._running = None
        self._running_plan = None
        self._dispatch_next()

    # ------------------------------------------------------------- sprinting
    def _on_sprint_start(self, execution: DagExecution) -> None:
        self.cluster.set_sprinting(True)
        if execution.running:
            execution.set_speed(self.cluster.speed)
        self.energy_meter.set_mode("sprint", self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "dvfs_transition",
                self.sim.now,
                src=self.telemetry_src,
                speed=self.cluster.speed,
                mode="sprint",
            )
        if self.telemetry.tracing:
            state = self._trace.get(execution.job.job_id)
            if state is not None:
                state["sprint_id"] = self.telemetry.new_span_id()
                state["sprint_start"] = self.sim.now

    def _on_sprint_end(self, execution: DagExecution) -> None:
        self.cluster.set_sprinting(False)
        if execution.running:
            execution.set_speed(self.cluster.speed)
            self.energy_meter.set_mode("busy", self.sim.now)
        else:
            mode = "busy" if self._running is not None else "idle"
            self.energy_meter.set_mode(mode, self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "dvfs_transition",
                self.sim.now,
                src=self.telemetry_src,
                speed=self.cluster.speed,
                mode="nominal",
            )
        if self.telemetry.tracing:
            state = self._trace.get(execution.job.job_id)
            if state is not None and "sprint_start" in state:
                # The DVFS throttle interval, a child of the attempt it
                # accelerated (the sprinter always stops before the attempt
                # closes, so the interval nests inside it).
                self.telemetry.emit(
                    "span",
                    self.sim.now,
                    src=self.telemetry_src,
                    span_id=state.pop("sprint_id"),
                    parent_id=state.get("attempt_id", state["job"]),
                    name="sprint",
                    cat="sprint",
                    start=state.pop("sprint_start"),
                    job_id=execution.job.job_id,
                    speed=self.cluster.dvfs.speedup(self.cluster.dvfs.sprint),
                )

    def _on_sprint_denied(self, execution: DagExecution) -> None:
        if self.telemetry.tracing:
            state = self._trace.get(execution.job.job_id)
            if state is not None and "attempt_id" in state:
                now = self.sim.now
                self.telemetry.emit(
                    "span",
                    now,
                    src=self.telemetry_src,
                    span_id=self.telemetry.new_span_id(),
                    parent_id=state["attempt_id"],
                    name="sprint_denied",
                    cat="denied",
                    start=now,
                    job_id=execution.job.job_id,
                )


def replicate_dag(
    scenario,
    policy: SchedulingPolicy,
    replications: int,
    scheduler: Union[str, StageScheduler] = "fifo",
    slack_biased: bool = False,
    base_seed: int = 0,
    jobs: int = 1,
    telemetry_base: Optional[str] = None,
    telemetry_interval: Optional[float] = None,
    faults: Union[str, FaultSpec, None] = None,
    decision_hook: Optional[DecisionHook] = None,
):
    """Replicate one DAG configuration over independent seeds.

    Each replication regenerates the scenario's DAG-job trace from its
    :func:`~repro.simulation.replication.replication_seed` and runs a fresh
    :class:`DagSimulation`, collecting makespan/latency/energy headline
    metrics.  ``jobs`` fans the replications across worker processes with
    metrics bitwise-identical to a serial run.  ``telemetry_base`` writes each
    replication's telemetry to a per-seed part file and merges the parts, in
    replication order, into one JSONL file at that path.  Returns
    ``{metric_name: ReplicatedMetric}``.
    """
    from repro.experiments.parallel import DagExperiment, merge_replication_parts
    from repro.simulation.replication import ReplicationRunner

    experiment = DagExperiment(
        scenario=scenario,
        policy=policy,
        scheduler=scheduler if isinstance(scheduler, str) else scheduler.name,
        slack_biased=slack_biased,
        telemetry_base=telemetry_base,
        telemetry_interval=telemetry_interval,
        faults=parse_fault_spec(faults),
        decision_hook=decision_hook,
    )
    metrics = ReplicationRunner(experiment).run(
        replications, base_seed=base_seed, jobs=jobs
    )
    merge_replication_parts(telemetry_base, base_seed, replications)
    return metrics


def run_dag_policy(
    policy: SchedulingPolicy,
    jobs: Sequence[DagJob],
    scheduler: Union[str, StageScheduler] = "fifo",
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    slack_biased: bool = False,
) -> DagSimulationResult:
    """Convenience wrapper: build a :class:`DagSimulation` and run it."""
    simulation = DagSimulation(
        policy=policy,
        jobs=jobs,
        scheduler=scheduler,
        cluster=cluster,
        seed=seed,
        slack_biased=slack_biased,
    )
    return simulation.run()
