"""DAG layer: stage-dependency jobs with pluggable stage schedulers.

This package generalises the paper's linear map/reduce stage chains to
**stage DAGs** — the execution model of Spark/GraphX query plans, SQL
physical plans and ML pipelines:

* :mod:`repro.dag.graph` — :class:`DagStage` (a
  :class:`~repro.engine.job.StageSpec` with dependency edges),
  :class:`StageDAG` (validated acyclicity, deterministic topological
  iteration) and :class:`DagJob`.
* :mod:`repro.dag.analytics` — PERT-style critical-path/slack analysis,
  HEFT-style upward ranks, lower-bound makespans, and slack-biased drop
  ratios that shift task dropping off the critical path.
* :mod:`repro.dag.schedulers` — pluggable stage schedulers (``fifo``,
  ``critical_path_first``, ``shortest_remaining_work``, ``widest_first``)
  choosing which ready stage gets free slots.
* :mod:`repro.dag.execution` — :class:`DagExecution`, the frontier-driven
  engine running ready stages concurrently on the cluster's slots (with DVFS
  rescaling and eviction, like the linear engine).
* :mod:`repro.dag.simulation` — :class:`DagSimulation`, DiAS (buffers,
  per-stage differential approximation, sprinting, energy) on DAG jobs.
"""

from repro.dag.analytics import (
    CriticalPathAnalysis,
    analyze_critical_path,
    slack_biased_drop_ratios,
    stage_duration,
    upward_ranks,
)
from repro.dag.execution import DagExecution, StageRun
from repro.dag.graph import DagJob, DagStage, StageDAG
from repro.dag.schedulers import (
    STAGE_SCHEDULERS,
    CriticalPathFirstScheduler,
    FifoStageScheduler,
    ShortestRemainingWorkScheduler,
    StageScheduler,
    WidestFirstScheduler,
    make_stage_scheduler,
)
from repro.dag.simulation import DagSimulation, DagSimulationResult, replicate_dag, run_dag_policy

__all__ = [
    "CriticalPathAnalysis",
    "analyze_critical_path",
    "slack_biased_drop_ratios",
    "stage_duration",
    "upward_ranks",
    "DagExecution",
    "StageRun",
    "DagJob",
    "DagStage",
    "StageDAG",
    "STAGE_SCHEDULERS",
    "CriticalPathFirstScheduler",
    "FifoStageScheduler",
    "ShortestRemainingWorkScheduler",
    "StageScheduler",
    "WidestFirstScheduler",
    "make_stage_scheduler",
    "DagSimulation",
    "DagSimulationResult",
    "replicate_dag",
    "run_dag_policy",
]
