"""Agents for the decision environments.

Two families:

* **Built-ins as agents** — :class:`BuiltinAgent` (delegate to the
  simulation's own scheduler/dispatcher), :class:`SchedulerAgent` (run a
  named stage scheduler), :class:`RandomAgent`.  These make the decision-hook
  refactor provably behaviour-preserving: routing every decision through
  them produces byte-identical results to the direct path under common
  random numbers (enforced by ``tests/properties/
  test_decision_hook_equivalence.py``).
* **Learned baselines** — :class:`EpsilonGreedyAgent` (linear value + SGD)
  and :class:`LinUCBAgent` (contextual UCB), both scoring each candidate's
  feature row with shared weights, so the variable-size action space needs
  no padding.  numpy-only; no heavy dependencies.

Feature rows are normalised per decision (each column divided by its
maximum absolute value across candidates, plus a bias column), which makes
the load-like columns scale-free relative comparisons — the right
representation for "which of these is least loaded" decisions.

Agents serialise to plain JSON (:func:`save_agent` / :func:`load_agent`)
so ``repro learn --save`` policies replay through ``repro policy``.
"""

import json
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.dag.schedulers import STAGE_SCHEDULERS, make_stage_scheduler
from repro.env.features import features_for
from repro.simulation.decisions import STAGE, DecisionPoint

__all__ = [
    "AGENTS",
    "Agent",
    "AgentDecisionHook",
    "BuiltinAgent",
    "EpsilonGreedyAgent",
    "LinUCBAgent",
    "RandomAgent",
    "SchedulerAgent",
    "load_agent",
    "make_agent",
    "save_agent",
]

#: Agent specs understood by :func:`make_agent` (and ``repro policy``).
AGENTS = ("builtin", "random", "epsilon_greedy", "linucb")


class Agent:
    """Base decision agent.

    ``act`` receives the :class:`~repro.simulation.decisions.DecisionPoint`
    and, when ``needs_features`` is set, the raw feature matrix (one row per
    candidate) — and returns the chosen candidate index.  Trainable agents
    additionally expose ``observe(context, reward)`` for delayed rewards;
    ``context`` is the agent's own normalised representation of the chosen
    candidate, captured from :attr:`last_context` right after ``act``.
    """

    name = "agent"
    needs_features = False
    trainable = False

    def __init__(self) -> None:
        #: Normalised design row of the last chosen candidate (trainable
        #: agents only) — the envs pair it with the delayed reward.
        self.last_context: Optional[np.ndarray] = None

    def begin_episode(self, seed: int) -> None:
        """Reset per-episode state (exploration streams) deterministically."""

    def act(self, point: DecisionPoint, features: Optional[Sequence[Sequence[float]]] = None) -> int:
        raise NotImplementedError

    def observe(self, context: np.ndarray, reward: float) -> None:
        """Consume the delayed reward for a past decision (no-op by default)."""

    def freeze(self) -> None:
        """Disable exploration and learning (evaluation mode)."""

    def state(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot; see :func:`save_agent`."""
        return {"agent": self.name}


def _identity_index(candidates: Sequence[Any], chosen: Any) -> int:
    for index, candidate in enumerate(candidates):
        if candidate is chosen:
            return index
    raise ValueError("scheduler returned an object outside the candidate set")


class BuiltinAgent(Agent):
    """Delegate every decision to the simulation's own scheduler/dispatcher.

    Stage decisions consult ``point.context.scheduler`` (the execution's
    configured stage scheduler) and routing decisions consult
    ``point.context.dispatcher`` — the *same instances*, drawing from the
    same random streams, as the direct path, which is what makes the hook
    path byte-identical to it.
    """

    name = "builtin"

    def act(self, point: DecisionPoint, features=None) -> int:
        if point.kind == STAGE:
            chosen = point.context.scheduler.select(point.candidates)
            return _identity_index(point.candidates, chosen)
        return point.context.dispatcher.select(point.job, point.candidates)


class SchedulerAgent(Agent):
    """Run a named built-in stage scheduler as an agent (stage decisions only).

    Stage schedulers are deterministic, so running e.g.
    ``SchedulerAgent("critical_path_first")`` through the hook on a
    fifo-configured simulation reproduces the direct
    ``scheduler="critical_path_first"`` run exactly.
    """

    def __init__(self, scheduler: str) -> None:
        super().__init__()
        self.scheduler = make_stage_scheduler(scheduler)
        self.name = f"scheduler:{self.scheduler.name}"

    def act(self, point: DecisionPoint, features=None) -> int:
        if point.kind != STAGE:
            raise ValueError(f"{self.name} only handles stage decisions")
        chosen = self.scheduler.select(point.candidates)
        return _identity_index(point.candidates, chosen)

    def state(self) -> Dict[str, Any]:
        return {"agent": "scheduler", "scheduler": self.scheduler.name}


class RandomAgent(Agent):
    """Uniform random choice from a per-episode seeded stream."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = int(seed)
        self._rng = np.random.default_rng((0xDEC1, self.seed, 0))

    def begin_episode(self, seed: int) -> None:
        self._rng = np.random.default_rng((0xDEC1, self.seed, int(seed)))

    def act(self, point: DecisionPoint, features=None) -> int:
        return int(self._rng.integers(point.num_actions))

    def state(self) -> Dict[str, Any]:
        return {"agent": "random", "seed": self.seed}


def _design(features: Sequence[Sequence[float]]) -> np.ndarray:
    """Per-decision normalised design matrix with a trailing bias column."""
    matrix = np.asarray(features, dtype=float)
    denom = np.abs(matrix).max(axis=0)
    denom[denom == 0.0] = 1.0
    matrix = matrix / denom
    bias = np.ones((matrix.shape[0], 1))
    return np.concatenate([matrix, bias], axis=1)


class EpsilonGreedyAgent(Agent):
    """Epsilon-greedy contextual bandit with a shared linear value model.

    Scores each candidate's normalised feature row with one weight vector;
    exploration picks a uniform candidate with probability ``epsilon``.  The
    delayed reward updates the chosen row by one SGD step on the squared
    value error.  Freezing zeroes exploration and stops updates, making
    evaluation rollouts fully deterministic.
    """

    name = "epsilon_greedy"
    needs_features = True
    trainable = True

    def __init__(
        self,
        epsilon: float = 0.2,
        learning_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon!r}")
        if learning_rate <= 0.0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate!r}")
        self.epsilon = float(epsilon)
        self.learning_rate = float(learning_rate)
        self.seed = int(seed)
        self.frozen = False
        self.weights: Optional[np.ndarray] = None
        self._rng = np.random.default_rng((0xE95, self.seed, 0))

    def begin_episode(self, seed: int) -> None:
        self._rng = np.random.default_rng((0xE95, self.seed, int(seed)))

    def freeze(self) -> None:
        self.frozen = True

    def act(self, point: DecisionPoint, features=None) -> int:
        design = _design(features)
        if self.weights is None:
            self.weights = np.zeros(design.shape[1])
        if not self.frozen and self._rng.random() < self.epsilon:
            action = int(self._rng.integers(design.shape[0]))
        else:
            action = int(np.argmax(design @ self.weights))
        self.last_context = design[action]
        return action

    def observe(self, context: np.ndarray, reward: float) -> None:
        if self.frozen or self.weights is None:
            return
        error = reward - float(self.weights @ context)
        self.weights += self.learning_rate * error * context

    def state(self) -> Dict[str, Any]:
        return {
            "agent": "epsilon_greedy",
            "epsilon": self.epsilon,
            "learning_rate": self.learning_rate,
            "seed": self.seed,
            "weights": None if self.weights is None else self.weights.tolist(),
        }


class LinUCBAgent(Agent):
    """LinUCB contextual bandit with shared ridge-regression weights.

    Maintains ``A = l2·I + Σ x xᵀ`` and ``b = Σ r·x`` over chosen rows;
    scores each candidate ``x`` as ``θᵀx + alpha·sqrt(xᵀ A⁻¹ x)`` with
    ``θ = A⁻¹ b``.  Fully deterministic (ties resolve to the lowest index);
    freezing drops the exploration bonus and stops updates.
    """

    name = "linucb"
    needs_features = True
    trainable = True

    def __init__(self, alpha: float = 1.0, l2: float = 1.0, seed: int = 0) -> None:
        super().__init__()
        if alpha < 0.0:
            raise ValueError(f"alpha must be non-negative, got {alpha!r}")
        if l2 <= 0.0:
            raise ValueError(f"l2 must be positive, got {l2!r}")
        self.alpha = float(alpha)
        self.l2 = float(l2)
        self.seed = int(seed)
        self.frozen = False
        self.A: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None

    def freeze(self) -> None:
        self.frozen = True

    def _ensure(self, dim: int) -> None:
        if self.A is None:
            self.A = self.l2 * np.eye(dim)
            self.b = np.zeros(dim)

    def act(self, point: DecisionPoint, features=None) -> int:
        design = _design(features)
        self._ensure(design.shape[1])
        inverse = np.linalg.inv(self.A)
        theta = inverse @ self.b
        scores = design @ theta
        if not self.frozen and self.alpha > 0.0:
            widths = np.sqrt(np.einsum("ij,jk,ik->i", design, inverse, design))
            scores = scores + self.alpha * widths
        action = int(np.argmax(scores))
        self.last_context = design[action]
        return action

    def observe(self, context: np.ndarray, reward: float) -> None:
        if self.frozen or self.A is None:
            return
        self.A += np.outer(context, context)
        self.b += reward * context

    def state(self) -> Dict[str, Any]:
        return {
            "agent": "linucb",
            "alpha": self.alpha,
            "l2": self.l2,
            "seed": self.seed,
            "A": None if self.A is None else self.A.tolist(),
            "b": None if self.b is None else self.b.tolist(),
        }


class AgentDecisionHook:
    """Adapt an :class:`Agent` to the decision-hook callable protocol.

    Extracts features lazily (only for agents that want them), so built-in
    agents run through the hook with no observation cost.  Picklable
    whenever the agent is, which is what lets ``replicate_fleet`` /
    ``replicate_dag`` fan hook-driven replications across processes.
    """

    def __init__(self, agent: Agent) -> None:
        self.agent = agent

    def __call__(self, point: DecisionPoint) -> int:
        features = features_for(point) if self.agent.needs_features else None
        return self.agent.act(point, features)


# --------------------------------------------------------------- factories
def make_agent(spec: str, **kwargs: Any) -> Agent:
    """Build an agent from a CLI spec.

    ``builtin`` / ``random`` / ``epsilon_greedy`` / ``linucb``, or
    ``scheduler:<name>`` for any built-in stage scheduler (e.g.
    ``scheduler:critical_path_first``).  Keyword arguments are forwarded to
    the agent constructor (unknown ones are ignored per agent).
    """
    if spec.startswith("scheduler:"):
        return SchedulerAgent(spec.split(":", 1)[1])
    if spec == "builtin":
        return BuiltinAgent()
    if spec == "random":
        return RandomAgent(seed=int(kwargs.get("seed", 0)))
    if spec == "epsilon_greedy":
        return EpsilonGreedyAgent(
            epsilon=float(kwargs.get("epsilon", 0.2)),
            learning_rate=float(kwargs.get("learning_rate", 0.05)),
            seed=int(kwargs.get("seed", 0)),
        )
    if spec == "linucb":
        return LinUCBAgent(
            alpha=float(kwargs.get("alpha", 1.0)),
            l2=float(kwargs.get("l2", 1.0)),
            seed=int(kwargs.get("seed", 0)),
        )
    choices = ", ".join(AGENTS) + ", scheduler:<" + "|".join(STAGE_SCHEDULERS) + ">"
    raise ValueError(f"unknown agent {spec!r}; expected one of: {choices}")


def save_agent(agent: Agent, path: str) -> None:
    """Write an agent's JSON snapshot (see :func:`load_agent`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(agent.state(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_agent(path: str) -> Agent:
    """Rebuild an agent from a :func:`save_agent` snapshot."""
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    kind = state.get("agent")
    if kind == "scheduler":
        return SchedulerAgent(state["scheduler"])
    if kind == "builtin":
        return BuiltinAgent()
    if kind == "random":
        return RandomAgent(seed=int(state.get("seed", 0)))
    if kind == "epsilon_greedy":
        agent = EpsilonGreedyAgent(
            epsilon=float(state.get("epsilon", 0.2)),
            learning_rate=float(state.get("learning_rate", 0.05)),
            seed=int(state.get("seed", 0)),
        )
        if state.get("weights") is not None:
            agent.weights = np.asarray(state["weights"], dtype=float)
        return agent
    if kind == "linucb":
        agent = LinUCBAgent(
            alpha=float(state.get("alpha", 1.0)),
            l2=float(state.get("l2", 1.0)),
            seed=int(state.get("seed", 0)),
        )
        if state.get("A") is not None:
            agent.A = np.asarray(state["A"], dtype=float)
            agent.b = np.asarray(state["b"], dtype=float)
        return agent
    raise ValueError(f"{path}: unknown agent kind {kind!r}")
