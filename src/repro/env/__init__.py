"""Gym-style decision environments over the fleet/DAG simulations.

This package turns the simulator's two decision points into step-based
reinforcement-learning-style environments, built on the decision-hook
protocol of :mod:`repro.simulation.decisions`:

* :class:`~repro.env.envs.SchedulingEnv` — one episode is one
  :class:`~repro.dag.simulation.DagSimulation` run; every decision picks
  which dispatchable stage receives the freed slot.
* :class:`~repro.env.envs.RoutingEnv` — one episode is one
  :class:`~repro.fleet.simulation.FleetSimulation` run; every decision picks
  the cluster an arriving job is routed to.

Observation schema
------------------
An observation is one feature row per candidate (variable-size discrete
action space: action ``i`` picks candidate ``i``).  Raw, unnormalised
values; the bandit agents normalise per decision.

``scheduling`` — candidates are the dispatchable stages
(:data:`~repro.env.features.STAGE_FEATURE_NAMES`):

==================  =====================================================
feature             meaning
==================  =====================================================
``heft_rank``       HEFT upward rank of the stage (critical stages rank
                    higher)
``pert_slack``      PERT slack of the stage; ``0`` on the critical path
``remaining_work``  slot-seconds of work left in the stage
``pending_tasks``   tasks of the stage not yet dispatched
``frontier_width``  number of dispatchable stages (same for every row)
==================  =====================================================

``routing`` — candidates are the per-cluster DiAS controllers
(:data:`~repro.env.features.CLUSTER_FEATURE_NAMES`):

==================  =====================================================
feature             meaning
==================  =====================================================
``queue_depth``     jobs buffered + running on the cluster
``work_left``       estimated slot-seconds of service remaining
``sprint_budget``   remaining sprint seconds (``-1`` = unmetered,
                    ``0`` = no sprinter)
``utilisation``     busy fraction of the cluster so far
``running``         ``1`` if a job is executing, else ``0``
``job_priority``    priority class of the arriving job (same every row)
==================  =====================================================

Reward
------
Rewards are per-decision and delayed to job completion (pluggable via the
envs' ``reward`` parameter):

* ``routing`` — the decision that routed job *j* receives
  ``-response_time(j)`` when *j* completes; episode return is the negative
  total response time.
* ``scheduling`` — every stage decision of job *j* receives
  ``-makespan(j) / lower_bound_makespan(j)`` (negative critical-path
  stretch) when *j* completes, so rewards are comparable across jobs of
  different sizes.

API
---
Both envs offer ``reset(seed) -> observation`` and ``step(action) ->
(observation, reward, done, info)`` lock-step semantics (the simulation
runs on a private thread and blocks at each decision), plus the much faster
callback-mode ``rollout(agent, seed, learn=...)`` used by training,
evaluation, the ``repro learn`` / ``repro policy`` CLI verbs and the
benchmarks.  Episodes come from a workload scenario or from a recorded
trace (``--replay``) via :class:`~repro.traces.replay.ReplaySource`.

Agents (:mod:`repro.env.agents`) include the built-in schedulers and
dispatchers re-expressed as trivial agents — provably behaviour-preserving
(byte-identical results to the direct path under common random numbers) —
and two dependency-free learned baselines: an epsilon-greedy linear bandit
and LinUCB.
"""

from repro.env.agents import (
    AGENTS,
    Agent,
    AgentDecisionHook,
    BuiltinAgent,
    EpsilonGreedyAgent,
    LinUCBAgent,
    RandomAgent,
    SchedulerAgent,
    load_agent,
    make_agent,
    save_agent,
)
from repro.env.envs import ENV_IDS, EpisodeOutcome, RoutingEnv, SchedulingEnv
from repro.env.features import (
    CLUSTER_FEATURE_NAMES,
    STAGE_FEATURE_NAMES,
    features_for,
)
from repro.env.learn import EnvSpec, evaluate, train

__all__ = [
    "AGENTS",
    "Agent",
    "AgentDecisionHook",
    "BuiltinAgent",
    "CLUSTER_FEATURE_NAMES",
    "ENV_IDS",
    "EnvSpec",
    "EpisodeOutcome",
    "EpsilonGreedyAgent",
    "LinUCBAgent",
    "RandomAgent",
    "RoutingEnv",
    "SchedulerAgent",
    "SchedulingEnv",
    "STAGE_FEATURE_NAMES",
    "evaluate",
    "features_for",
    "load_agent",
    "make_agent",
    "save_agent",
    "train",
]
