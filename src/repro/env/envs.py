"""The two decision environments: stage scheduling and fleet routing.

Both envs share the same two execution modes:

* ``rollout(agent, seed, learn=...)`` — callback mode: the agent is wired
  straight into the simulation's decision hook and the whole episode runs
  in one ``sim.run()`` call.  This is the fast path used by training,
  evaluation, the CLI verbs and the benchmarks.
* ``reset(seed)`` / ``step(action)`` — gym-style lock-step mode: the
  simulation runs on a private daemon thread and blocks inside the decision
  hook until ``step`` delivers an action.  Strictly synchronous (exactly one
  of the two threads is ever runnable), so results are deterministic and
  byte-identical to a callback-mode rollout of the same action sequence.

Observations are raw per-candidate feature rows (see :mod:`repro.env` for
the schema); the action space is discrete with ``len(observation)`` actions
at each step.  Rewards are delayed per-decision credits delivered at job
completion and summed between consecutive decisions for ``step``.
"""

import queue
import threading
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Dict, Optional

from repro.core.policies import SchedulingPolicy
from repro.dag.simulation import DagSimulation
from repro.engine.cluster import Cluster
from repro.env.agents import Agent
from repro.env.features import (
    CLUSTER_FEATURE_NAMES,
    STAGE_FEATURE_NAMES,
    features_for,
)
from repro.fleet.simulation import FleetSimulation
from repro.simulation.decisions import DecisionPoint
from repro.traces.replay import ReplaySource

__all__ = ["ENV_IDS", "EpisodeOutcome", "SchedulingEnv", "RoutingEnv", "EpisodeClosed"]

#: Environment ids (``repro learn --env`` / ``repro policy --env``).
ENV_IDS = ("scheduling", "routing")


class EpisodeClosed(RuntimeError):
    """Raised inside the episode thread when the env is closed mid-episode."""


@dataclass
class EpisodeOutcome:
    """Result of one callback-mode rollout."""

    seed: int
    decisions: int
    total_reward: float
    metrics: Dict[str, float] = field(default_factory=dict)


_CLOSE = object()


class _LockStepEpisode:
    """Drives one simulation on a private thread with blocking decisions."""

    def __init__(self, sim_factory: Callable[[Callable[[DecisionPoint], int]], Any]):
        self._to_main: "queue.SimpleQueue" = queue.SimpleQueue()
        self._to_sim: "queue.SimpleQueue" = queue.SimpleQueue()
        self._awaiting_action = False
        self.sim = sim_factory(self._hook)
        self._thread = threading.Thread(target=self._drive, daemon=True)

    # Runs on the episode thread -------------------------------------------
    def _hook(self, point: DecisionPoint) -> int:
        self._to_main.put(("decision", point))
        action = self._to_sim.get()
        if action is _CLOSE:
            raise EpisodeClosed()
        return action

    def _drive(self) -> None:
        try:
            result = self.sim.run()
        except EpisodeClosed:
            self._to_main.put(("closed", None))
            return
        except BaseException as exc:  # surfaced in the main thread
            self._to_main.put(("error", exc))
            return
        self._to_main.put(("done", result))

    # Runs on the main thread ----------------------------------------------
    def start(self):
        self._thread.start()
        return self._wait()

    def send(self, action: int):
        if not self._awaiting_action:
            raise RuntimeError("no decision pending; call reset() first")
        self._awaiting_action = False
        self._to_sim.put(action)
        return self._wait()

    def _wait(self):
        kind, payload = self._to_main.get()
        if kind == "decision":
            self._awaiting_action = True
            return kind, payload
        if kind == "error":
            raise payload
        return kind, payload  # "done" / "closed"

    def close(self) -> None:
        if self._thread.is_alive() and self._awaiting_action:
            self._awaiting_action = False
            self._to_sim.put(_CLOSE)
            self._to_main.get()  # drain the "closed" acknowledgement
        self._thread.join(timeout=5.0)


def _tee(previous, extra):
    """Chain a record callback after whatever is already installed."""
    if previous is None:
        return extra

    def both(record):
        previous(record)
        extra(record)

    return both


class _DecisionEnv:
    """Shared rollout / reset / step machinery; subclasses wire rewards."""

    id = "env"
    feature_names = ()

    def __init__(self, reward: Optional[Callable[[Any], float]] = None) -> None:
        #: Optional override mapping a completed JobRecord to the reward
        #: credited to that job's decision(s).
        self._reward_fn = reward
        self._episode: Optional[_LockStepEpisode] = None
        self._reward_acc = [0.0]
        self._done = True
        self.last_metrics: Dict[str, float] = {}

    # Subclass hooks --------------------------------------------------------
    def _build(self, seed: int, hook):
        raise NotImplementedError

    def _wire_rewards(self, sim, hook_state: dict, deliver) -> None:
        """Install completion callbacks that call ``deliver(job_id, reward)``."""
        raise NotImplementedError

    def _note_decision(self, point: DecisionPoint, hook_state: dict) -> None:
        """Record per-decision context needed for reward attribution."""

    def _metrics(self, result) -> Dict[str, float]:
        raise NotImplementedError

    # Callback mode ---------------------------------------------------------
    def rollout(self, agent: Agent, seed: int = 0, learn: bool = False) -> EpisodeOutcome:
        """Run one full episode with ``agent`` wired into the decision hook.

        With ``learn=True`` (and a trainable agent) every delayed reward is
        fed back through ``agent.observe``; otherwise the agent only acts.
        Returns the episode outcome with the env's headline metrics.
        """
        agent.begin_episode(seed)
        learning = learn and agent.trainable
        hook_state: dict = {"pending": {}, "decisions": 0}
        totals = self._reward_acc = [0.0]

        def hook(point: DecisionPoint) -> int:
            features = features_for(point) if agent.needs_features else None
            action = agent.act(point, features)
            hook_state["decisions"] += 1
            self._note_decision(point, hook_state)
            if learning and agent.last_context is not None:
                hook_state["pending"].setdefault(point.job.job_id, []).append(
                    agent.last_context
                )
            return action

        sim = self._build(seed, hook)

        def deliver(job_id: int, reward: float) -> None:
            totals[0] += reward
            if learning:
                for context in hook_state["pending"].pop(job_id, ()):
                    agent.observe(context, reward)

        self._wire_rewards(sim, hook_state, deliver)
        result = sim.run()
        self.last_metrics = self._metrics(result)
        return EpisodeOutcome(
            seed=seed,
            decisions=hook_state["decisions"],
            total_reward=totals[0],
            metrics=self.last_metrics,
        )

    # Lock-step mode --------------------------------------------------------
    def reset(self, seed: int = 0):
        """Start a new episode; returns the first observation (or ``None``
        if the episode finished without any decision)."""
        self.close()
        hook_state: dict = {"pending": {}, "decisions": 0}
        self._reward_acc = [0.0]
        totals = self._reward_acc

        def deliver(job_id: int, reward: float) -> None:
            totals[0] += reward

        def factory(hook):
            outer = self

            def noting_hook(point):
                outer._note_decision(point, hook_state)
                return hook(point)

            sim = outer._build(seed, noting_hook)
            outer._wire_rewards(sim, hook_state, deliver)
            return sim

        self._episode = _LockStepEpisode(factory)
        kind, payload = self._episode.start()
        if kind == "decision":
            self._done = False
            return features_for(payload)
        self._done = True
        self.last_metrics = self._metrics(payload)
        return None

    def step(self, action: int):
        """Apply ``action`` to the pending decision.

        Returns ``(observation, reward, done, info)``: the next decision's
        observation (``None`` once done), the reward accumulated since the
        previous step, and — when done — the episode metrics in ``info``.
        """
        if self._episode is None or self._done:
            raise RuntimeError("episode is over; call reset() first")
        before = self._reward_acc[0]
        kind, payload = self._episode.send(int(action))
        reward = self._reward_acc[0] - before
        if kind == "decision":
            return features_for(payload), reward, False, {"point": payload}
        self._done = True
        self.last_metrics = self._metrics(payload)
        return None, reward, True, {"metrics": self.last_metrics}

    def close(self) -> None:
        """Tear down a live episode thread (safe to call repeatedly)."""
        if self._episode is not None:
            self._episode.close()
            self._episode = None
        self._done = True


def _fresh_cluster(source: Cluster) -> Cluster:
    # Cluster carries run state (sprinting mode); never share one instance
    # across episodes (mirrors DagExperiment).
    return Cluster(config=source.config, dvfs=source.dvfs, power_model=source.power_model)


class SchedulingEnv(_DecisionEnv):
    """Stage-scheduling episodes over a :class:`DagSimulation`.

    One episode runs a DAG-job trace (from a scenario or a dag-jsonl replay
    file); every decision picks which dispatchable stage receives the freed
    slot.  Default reward: each of job *j*'s decisions is credited
    ``-makespan(j)/lower_bound(j)`` (negative critical-path stretch) when
    *j* completes.
    """

    id = "scheduling"
    feature_names = STAGE_FEATURE_NAMES

    def __init__(
        self,
        policy: SchedulingPolicy,
        scenario=None,
        replay: Optional[str] = None,
        num_jobs: Optional[int] = None,
        scheduler: str = "fifo",
        time_scale: float = 1.0,
        rate_scale: float = 1.0,
        reward: Optional[Callable[[Any], float]] = None,
    ) -> None:
        super().__init__(reward=reward)
        if (scenario is None) == (replay is None):
            raise ValueError("pass exactly one of scenario or replay")
        self.policy = policy
        self.scenario = scenario
        self.replay = replay
        self.num_jobs = num_jobs
        self.scheduler = scheduler
        self.time_scale = time_scale
        self.rate_scale = rate_scale

    def _build(self, seed: int, hook):
        if self.replay is not None:
            source = ReplaySource(
                self.replay,
                mode="dag",
                time_scale=self.time_scale,
                rate_scale=self.rate_scale,
            )
            jobs_iter = iter(source)
            if self.num_jobs is not None:
                jobs_iter = islice(jobs_iter, self.num_jobs)
            return DagSimulation(
                policy=self.policy,
                job_source=jobs_iter,
                scheduler=self.scheduler,
                seed=seed,
                streaming_metrics=True,
                decision_hook=hook,
            )
        trace = self.scenario.generate_trace(seed=seed, num_jobs=self.num_jobs)
        return DagSimulation(
            policy=self.policy,
            jobs=trace,
            scheduler=self.scheduler,
            cluster=_fresh_cluster(self.scenario.cluster),
            seed=seed,
            decision_hook=hook,
        )

    def _note_decision(self, point: DecisionPoint, hook_state: dict) -> None:
        # Capture the job's PERT lower bound once, at its first decision, so
        # the completion reward can normalise the makespan.
        bounds = hook_state.setdefault("lower_bounds", {})
        job_id = point.job.job_id
        if job_id not in bounds:
            bounds[job_id] = point.context.lower_bound_makespan

    def _wire_rewards(self, sim, hook_state: dict, deliver) -> None:
        reward_fn = self._reward_fn

        def on_record(record):
            if reward_fn is not None:
                reward = reward_fn(record)
            else:
                bound = hook_state.get("lower_bounds", {}).pop(record.job_id, 0.0)
                reward = (
                    -(record.execution_time / bound) if bound > 0 else -1.0
                )
            deliver(record.job_id, reward)

        sim.on_job_record = _tee(sim.on_job_record, on_record)

    def _metrics(self, result) -> Dict[str, float]:
        return {
            "completed_jobs": float(result.completed_jobs),
            "mean_makespan_s": result.mean_makespan(),
            "mean_cp_stretch": result.mean_critical_path_stretch(),
            "mean_response_s": result.mean_response_time(),
            "p95_response_s": result.tail_response_time(),
        }


class RoutingEnv(_DecisionEnv):
    """Job-routing episodes over a :class:`FleetSimulation`.

    One episode runs a fleet job trace (from a scenario or a cluster trace
    replay file); every decision picks the cluster the arriving job joins.
    Default reward: the decision that routed job *j* is credited
    ``-response_time(j)`` when *j* completes.
    """

    id = "routing"
    feature_names = CLUSTER_FEATURE_NAMES

    def __init__(
        self,
        policy: SchedulingPolicy,
        scenario=None,
        replay: Optional[str] = None,
        num_jobs: Optional[int] = None,
        num_clusters: int = 2,
        dispatcher: str = "round_robin",
        power_of_d: Optional[int] = None,
        time_scale: float = 1.0,
        rate_scale: float = 1.0,
        reward: Optional[Callable[[Any], float]] = None,
    ) -> None:
        super().__init__(reward=reward)
        if (scenario is None) == (replay is None):
            raise ValueError("pass exactly one of scenario or replay")
        self.policy = policy
        self.scenario = scenario
        self.replay = replay
        self.num_jobs = num_jobs
        self.num_clusters = num_clusters
        self.dispatcher = dispatcher
        self.power_of_d = power_of_d
        self.time_scale = time_scale
        self.rate_scale = rate_scale

    def _build(self, seed: int, hook):
        if self.replay is not None:
            source = ReplaySource(
                self.replay,
                mode="fleet",
                time_scale=self.time_scale,
                rate_scale=self.rate_scale,
            )
            jobs_iter = iter(source)
            if self.num_jobs is not None:
                jobs_iter = islice(jobs_iter, self.num_jobs)
            return FleetSimulation(
                policy=self.policy,
                jobs=(),
                job_source=jobs_iter,
                num_clusters=self.num_clusters,
                dispatcher=self.dispatcher,
                power_of_d=self.power_of_d,
                seed=seed,
                streaming_metrics=True,
                traffic_shares=source.class_shares(),
                decision_hook=hook,
            )
        trace = self.scenario.generate_trace(seed=seed, num_jobs=self.num_jobs)
        return FleetSimulation(
            policy=self.policy,
            jobs=trace,
            clusters=self.scenario.make_clusters(),
            dispatcher=self.dispatcher,
            power_of_d=self.power_of_d,
            seed=seed,
            decision_hook=hook,
        )

    def _wire_rewards(self, sim, hook_state: dict, deliver) -> None:
        reward_fn = self._reward_fn

        def on_record(record):
            reward = reward_fn(record) if reward_fn is not None else -record.response_time
            deliver(record.job_id, reward)

        for controller in sim.controllers:
            controller.on_job_record = _tee(controller.on_job_record, on_record)

    def _metrics(self, result) -> Dict[str, float]:
        return dict(result.summary())


def make_env(env_id: str, **kwargs):
    """Build an env by id (``scheduling`` / ``routing``)."""
    if env_id == "scheduling":
        return SchedulingEnv(**kwargs)
    if env_id == "routing":
        return RoutingEnv(**kwargs)
    raise ValueError(
        f"unknown env {env_id!r}; expected one of {', '.join(ENV_IDS)}"
    )
