"""Training and evaluation loops for the decision environments.

``train`` runs sequential learning episodes (bandit state is inherently
sequential); ``evaluate`` rolls a *frozen* agent over independent episode
seeds, optionally fanned across worker processes with
:func:`~repro.experiments.parallel.parallel_map` — results are returned in
seed order, so a parallel evaluation is byte-identical to a serial one (the
contract the ``policy-smoke`` CI job enforces).

Episode seeds follow the same :func:`~repro.simulation.replication.
replication_seed` scheme as every other replicated experiment in the repo,
so learned-vs-heuristic comparisons are common-random-numbers by
construction: every policy sees the exact same trace and service draws.
"""

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.env.agents import Agent
from repro.env.envs import ENV_IDS, RoutingEnv, SchedulingEnv
from repro.experiments.parallel import parallel_map
from repro.simulation.replication import replication_seed
from repro.workloads import scenarios as scenario_module

__all__ = [
    "EnvSpec",
    "DAG_ENV_SCENARIOS",
    "FLEET_ENV_SCENARIOS",
    "train",
    "evaluate",
    "summarise",
]

#: Scenario factories per env family (names match the ``repro`` CLI).
DAG_ENV_SCENARIOS = {
    "layered": scenario_module.dag_layered_scenario,
    "fork-join": scenario_module.dag_fork_join_scenario,
    "triangle-count": scenario_module.dag_triangle_count_scenario,
}
FLEET_ENV_SCENARIOS = {
    "two-priority": scenario_module.fleet_two_priority_scenario,
    "three-priority": scenario_module.fleet_three_priority_scenario,
}

#: The headline metric each env is judged on (lower is better).
KEY_METRICS = {"scheduling": "mean_makespan_s", "routing": "p95_response_s"}


@dataclass
class EnvSpec:
    """A picklable recipe for building an environment in any process.

    ``scenario`` names a workload scenario (per-env registries above) and
    ``replay`` points at a trace file — exactly one must be set.  Worker
    processes rebuild the env from this spec, so parallel evaluation never
    pickles simulations, only the spec and a frozen agent.
    """

    env: str
    policy: Any
    scenario: Optional[str] = None
    replay: Optional[str] = None
    num_jobs: Optional[int] = None
    clusters: Optional[int] = None
    scheduler: str = "fifo"
    dispatcher: str = "round_robin"
    power_of_d: Optional[int] = None
    time_scale: float = 1.0
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.env not in ENV_IDS:
            raise ValueError(
                f"unknown env {self.env!r}; expected one of {', '.join(ENV_IDS)}"
            )
        if (self.scenario is None) == (self.replay is None):
            raise ValueError("pass exactly one of scenario or replay")
        if self.scenario is not None:
            registry = (
                DAG_ENV_SCENARIOS if self.env == "scheduling" else FLEET_ENV_SCENARIOS
            )
            if self.scenario not in registry:
                raise ValueError(
                    f"unknown {self.env} scenario {self.scenario!r}; expected one "
                    f"of {', '.join(sorted(registry))}"
                )

    @property
    def key_metric(self) -> str:
        return KEY_METRICS[self.env]

    def with_dispatcher(self, dispatcher: str) -> "EnvSpec":
        return replace(self, dispatcher=dispatcher)

    def make_env(self):
        """Build the environment this spec describes."""
        if self.env == "scheduling":
            scenario = None
            if self.scenario is not None:
                scenario = DAG_ENV_SCENARIOS[self.scenario]()
            return SchedulingEnv(
                policy=self.policy,
                scenario=scenario,
                replay=self.replay,
                num_jobs=self.num_jobs,
                scheduler=self.scheduler,
                time_scale=self.time_scale,
                rate_scale=self.rate_scale,
            )
        scenario = None
        if self.scenario is not None:
            kwargs = {} if self.clusters is None else {"num_clusters": self.clusters}
            scenario = FLEET_ENV_SCENARIOS[self.scenario](**kwargs)
        return RoutingEnv(
            policy=self.policy,
            scenario=scenario,
            replay=self.replay,
            num_jobs=self.num_jobs,
            num_clusters=self.clusters if self.clusters is not None else 2,
            dispatcher=self.dispatcher,
            power_of_d=self.power_of_d,
            time_scale=self.time_scale,
            rate_scale=self.rate_scale,
        )


def _episode_row(index: int, seed: int, outcome) -> Dict[str, float]:
    row: Dict[str, float] = {
        "episode": float(index),
        "seed": float(seed),
        "reward": outcome.total_reward,
        "decisions": float(outcome.decisions),
    }
    row.update(outcome.metrics)
    return row


def train(
    spec: EnvSpec,
    agent: Agent,
    episodes: int,
    base_seed: int = 0,
) -> List[Dict[str, float]]:
    """Run ``episodes`` learning rollouts in seed order; returns the history.

    Each episode uses ``replication_seed(base_seed, i)`` so the training
    stream is reproducible and disjoint across base seeds.
    """
    if episodes < 1:
        raise ValueError("training needs at least one episode")
    env = spec.make_env()
    history = []
    for index in range(episodes):
        seed = replication_seed(base_seed, index)
        outcome = env.rollout(agent, seed=seed, learn=True)
        history.append(_episode_row(index, seed, outcome))
    return history


class _EvalEpisode:
    """Picklable seed -> evaluation-row callable for ``parallel_map``."""

    def __init__(self, spec: EnvSpec, agent: Agent) -> None:
        self.spec = spec
        self.agent = agent

    def __call__(self, seed: int) -> Dict[str, float]:
        env = self.spec.make_env()
        outcome = env.rollout(self.agent, seed=seed, learn=False)
        return {
            "seed": float(seed),
            "reward": outcome.total_reward,
            "decisions": float(outcome.decisions),
            **outcome.metrics,
        }


def evaluate(
    spec: EnvSpec,
    agent: Agent,
    episodes: int,
    base_seed: int = 0,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Roll a frozen ``agent`` over ``episodes`` CRN seeds; rows in seed order.

    ``jobs > 1`` fans episodes across processes; because the agent is frozen
    (deterministic) and rows are folded in submission order, the output is
    byte-identical to a serial run.
    """
    if episodes < 1:
        raise ValueError("evaluation needs at least one episode")
    agent.freeze()
    seeds = [replication_seed(base_seed, index) for index in range(episodes)]
    return parallel_map(_EvalEpisode(spec, agent), seeds, jobs=jobs)


def summarise(rows: List[Dict[str, float]]) -> Dict[str, float]:
    """Mean of every numeric column over the evaluation rows."""
    if not rows:
        return {}
    keys = [key for key in rows[0] if key not in ("seed", "episode")]
    return {key: sum(row[key] for row in rows) / len(rows) for key in keys}
