"""Typed observation vectors for the decision environments.

One feature row per candidate, raw (unnormalised) values — the schema is
documented in :mod:`repro.env`.  Extraction is lazy: the decision hooks only
call into this module for agents that declare ``needs_features``, so the
built-in agents (and the hookless direct path) never pay for it.
"""

from typing import List

from repro.simulation.decisions import ROUTE, STAGE, DecisionPoint

__all__ = [
    "STAGE_FEATURE_NAMES",
    "CLUSTER_FEATURE_NAMES",
    "stage_features",
    "cluster_features",
    "features_for",
]

#: Per-candidate features at a ``stage`` decision (candidates = dispatchable
#: stages of the running DAG job).
STAGE_FEATURE_NAMES = (
    "heft_rank",
    "pert_slack",
    "remaining_work",
    "pending_tasks",
    "frontier_width",
)

#: Per-candidate features at a ``route`` decision (candidates = per-cluster
#: DiAS controllers).
CLUSTER_FEATURE_NAMES = (
    "queue_depth",
    "work_left",
    "sprint_budget",
    "utilisation",
    "running",
    "job_priority",
)


def stage_features(point: DecisionPoint) -> List[List[float]]:
    """Feature rows for a stage decision, ordered like ``point.candidates``."""
    slack = point.context.analysis.slack
    width = float(len(point.candidates))
    return [
        [
            float(run.rank),
            float(slack.get(run.index, 0.0)),
            float(run.remaining_work()),
            float(run.pending_tasks),
            width,
        ]
        for run in point.candidates
    ]


def cluster_features(point: DecisionPoint) -> List[List[float]]:
    """Feature rows for a routing decision, ordered like ``point.candidates``."""
    priority = float(point.job.priority)
    rows: List[List[float]] = []
    for controller in point.candidates:
        sprinter = controller.sprinter
        if sprinter is None:
            budget = 0.0
        else:
            remaining = sprinter.available_budget()
            # ``None`` means sprinting is unmetered; -1 keeps the column
            # numeric while staying distinguishable from an empty budget.
            budget = -1.0 if remaining is None else float(remaining)
        # telemetry_sample() is the documented read-only state snapshot; it
        # must not mutate, so sampling features cannot perturb the episode.
        sample = controller.telemetry_sample()
        rows.append(
            [
                float(controller.queue_length),
                float(sample["work_left"]),
                budget,
                float(sample["utilisation"]),
                float(sample["running"]),
                priority,
            ]
        )
    return rows


def features_for(point: DecisionPoint) -> List[List[float]]:
    """Dispatch on the decision kind."""
    if point.kind == STAGE:
        return stage_features(point)
    if point.kind == ROUTE:
        return cluster_features(point)
    raise ValueError(f"unknown decision kind {point.kind!r}")
