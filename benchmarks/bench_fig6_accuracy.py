"""Figure 6 — accuracy loss vs map-task drop ratio.

Regenerates the mean absolute percentage error of the word-popularity analysis
as the drop ratio Θm grows, by actually running the word-count job on a
synthetic Zipf corpus through the mini-MapReduce runtime with task dropping.
The paper's published operating points (≈8.5 % at Θm = 0.1, ≈15 % at 0.2,
≈32 % at 0.4) are printed alongside for comparison.
"""

from __future__ import annotations

from repro.experiments.figures import figure6_accuracy_loss
from repro.experiments.reporting import format_figure


def test_figure6_accuracy_loss(benchmark, record_series):
    result = benchmark.pedantic(
        figure6_accuracy_loss,
        kwargs={
            "drop_ratios": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
            "num_partitions": 50,
            "repetitions": 3,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    record_series("figure6_accuracy_loss", format_figure(result, "Figure 6"))
    rows = {r["drop_ratio"]: r["measured_mape_pct"] for r in result["rows"]}
    # The error grows with the drop ratio and is clearly sub-linear in shape.
    assert rows[0.1] < rows[0.4] < rows[0.8]
    assert rows[0.8] < 8 * rows[0.1]
