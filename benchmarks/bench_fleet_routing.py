"""Fleet routing — dispatcher comparison on the paper's workloads.

Routes the two-priority (Fig. 7) and three-priority (Fig. 9) workloads,
scaled to a 4-cluster fleet, through every dispatcher and compares the
fleet-wide high-priority P95 latency plus the load-imbalance factor.

High-priority tail percentiles of a single run are noisy (only ~10 % of the
trace is high priority), so each router is evaluated on three independently
seeded replications of the scenario and the per-job records are pooled before
taking the percentile.  The seed list is fixed, so results are bit-identical
across repeated runs.

Expected shape: load-aware routing (JSQ, least-work-left) beats blind random
routing on the high-priority P95 and keeps the fleet visibly better balanced;
least-work-left also beats JSQ because queue *length* undercounts the huge
low-priority jobs (1117 MB vs 473 MB).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.policies import SchedulingPolicy
from repro.experiments.reporting import format_rows
from repro.fleet.simulation import FleetSimulation
from repro.simulation.metrics import percentile
from repro.workloads.scenarios import (
    HIGH,
    fleet_three_priority_scenario,
    fleet_two_priority_scenario,
)

ROUTERS = ["random", "round_robin", "jsq", "least_work_left", "priority_partitioned"]
SEEDS = (0, 1, 2)
NUM_CLUSTERS = 4
JOBS_PER_CLUSTER = 250


def _run_routing_comparison(scenario_factory, policy: SchedulingPolicy) -> List[Dict]:
    """One row per router with pooled-percentile latency and imbalance."""
    rows: List[Dict] = []
    for router in ROUTERS:
        high_responses: List[float] = []
        all_responses: List[float] = []
        imbalances: List[float] = []
        name = router
        for seed in SEEDS:
            scenario = scenario_factory(
                num_clusters=NUM_CLUSTERS, num_jobs_per_cluster=JOBS_PER_CLUSTER
            )
            simulation = FleetSimulation(
                policy=policy,
                jobs=scenario.generate_trace(seed=seed),
                clusters=scenario.make_clusters(),
                dispatcher=router,
                seed=seed,
            )
            result = simulation.run()
            name = result.dispatcher_name
            for record in result.records():
                all_responses.append(record.response_time)
                if record.priority == HIGH:
                    high_responses.append(record.response_time)
            imbalances.append(result.load_imbalance)
        rows.append(
            {
                "router": name,
                "high_p95_s": percentile(high_responses, 95),
                "high_mean_s": sum(high_responses) / len(high_responses),
                "fleet_mean_s": sum(all_responses) / len(all_responses),
                "load_imbalance": sum(imbalances) / len(imbalances),
            }
        )
    return rows


def _by_router(rows: List[Dict]) -> Dict[str, Dict]:
    return {row["router"]: row for row in rows}


def test_fleet_routing_two_priority(benchmark, record_series, record_json):
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})
    rows = benchmark.pedantic(
        _run_routing_comparison,
        args=(fleet_two_priority_scenario, policy),
        rounds=1,
        iterations=1,
    )
    record_series(
        "fleet_routing_two_priority",
        format_rows(rows),
    )
    record_json(
        "fleet_routing_two_priority",
        rows,
        seeds=SEEDS,
        config={
            "scenario": "fleet-two-priority",
            "clusters": NUM_CLUSTERS,
            "jobs_per_cluster": JOBS_PER_CLUSTER,
            "policy": "DA(0/20)",
            "routers": list(ROUTERS),
        },
    )
    by_router = _by_router(rows)
    # Load-aware routing beats blind random routing on the high-priority tail.
    assert by_router["jsq"]["high_p95_s"] < by_router["random"]["high_p95_s"]
    assert by_router["least_work_left"]["high_p95_s"] < by_router["random"]["high_p95_s"]
    # Work-aware routing beats count-based JSQ under bimodal job sizes.
    assert (
        by_router["least_work_left"]["high_p95_s"] < by_router["jsq"]["high_p95_s"]
    )
    # Load-aware routing also keeps the fleet better balanced than random.
    assert by_router["jsq"]["load_imbalance"] < by_router["random"]["load_imbalance"]


def test_fleet_routing_three_priority(benchmark, record_series, record_json):
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 1: 0.1, 0: 0.2})
    rows = benchmark.pedantic(
        _run_routing_comparison,
        args=(fleet_three_priority_scenario, policy),
        rounds=1,
        iterations=1,
    )
    record_series(
        "fleet_routing_three_priority",
        format_rows(rows),
    )
    record_json(
        "fleet_routing_three_priority",
        rows,
        seeds=SEEDS,
        config={
            "scenario": "fleet-three-priority",
            "clusters": NUM_CLUSTERS,
            "jobs_per_cluster": JOBS_PER_CLUSTER,
            "policy": "DA(0/10/20)",
            "routers": list(ROUTERS),
        },
    )
    by_router = _by_router(rows)
    assert by_router["jsq"]["high_p95_s"] < by_router["random"]["high_p95_s"]
    assert by_router["least_work_left"]["high_p95_s"] < by_router["random"]["high_p95_s"]


def test_fleet_routing_is_deterministic(record_series):
    """The same seeds and router produce bit-identical fleet results."""
    policy = SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})

    def once() -> Dict[str, float]:
        scenario = fleet_two_priority_scenario(
            num_clusters=NUM_CLUSTERS, num_jobs_per_cluster=100
        )
        simulation = FleetSimulation(
            policy=policy,
            jobs=scenario.generate_trace(seed=3),
            clusters=scenario.make_clusters(),
            dispatcher="jsq",
            seed=3,
        )
        result = simulation.run()
        return {
            "high_p95_s": result.tail_response_time(HIGH),
            "fleet_mean_s": result.mean_response_time(),
            "energy_j": result.total_energy_joules,
            "duration_s": result.duration,
        }

    first, second = once(), once()
    record_series(
        "fleet_routing_determinism",
        format_rows([{"run": 1, **first}, {"run": 2, **second}]),
    )
    assert first == second
