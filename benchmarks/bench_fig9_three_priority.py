"""Figure 9 — differential approximation on a three-priority system.

Regenerates the three-priority experiment (arrival ratio high-medium-low
1-4-5, ~80 % load) comparing P, NP, DA(0,10,20) and DA(0,20,40).

Expected shape (paper): the preemptive baseline wastes ~16 % of machine time;
the non-preemptive variants waste none; differential approximation cuts the
low-priority latency sharply and the medium-priority latency moderately, at a
modest high-priority cost.
"""

from __future__ import annotations

from repro.experiments.figures import figure9_three_priority
from repro.experiments.reporting import format_comparison
from repro.workloads.scenarios import HIGH, LOW, MEDIUM


def test_figure9_three_priority(benchmark, record_series):
    comparison = benchmark.pedantic(
        figure9_three_priority,
        kwargs={"num_jobs": 600, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series(
        "figure9_three_priority",
        format_comparison(comparison, "Figure 9 — three-priority system"),
    )
    assert comparison.result("P").resource_waste > 0.05
    assert comparison.result("DA(0/10/20)").resource_waste == 0.0
    assert comparison.relative_difference("DA(0/20/40)", LOW, "mean") < -50.0
    assert comparison.relative_difference("DA(0/20/40)", MEDIUM, "mean") < comparison.relative_difference(
        "NP", MEDIUM, "mean"
    )
