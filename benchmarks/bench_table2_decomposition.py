"""Table 2 — queueing/execution decomposition under sprinted policies.

Regenerates the mean queueing and execution times of the high- and
low-priority classes under NPS (sprinted non-preemptive, no approximation),
DiAS(0,10) and DiAS(0,20) with the limited sprinting budget.

Expected shape (paper): high-priority execution times are noticeably shorter
than low-priority ones (sprinting); DiAS(0,20) has the shortest low-priority
execution time (~131 s in the paper) and the shortest queueing times for both
classes.
"""

from __future__ import annotations

from repro.experiments.reporting import format_rows
from repro.experiments.tables import table2_latency_decomposition


def test_table2_latency_decomposition(benchmark, record_series):
    result = benchmark.pedantic(
        table2_latency_decomposition,
        kwargs={"num_jobs": 400, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series("table2_decomposition", format_rows(result["rows"]))
    rows = {(r["policy"], r["class"]): r for r in result["rows"]}
    assert rows[("DiAS(0/20)", "Low")]["mean_execution_s"] < rows[("NPS", "Low")]["mean_execution_s"]
    assert rows[("DiAS(0/20)", "Low")]["mean_queueing_s"] < rows[("NPS", "Low")]["mean_queueing_s"]
    for policy in ("NPS", "DiAS(0/10)", "DiAS(0/20)"):
        assert rows[(policy, "High")]["mean_execution_s"] < rows[(policy, "Low")]["mean_execution_s"]
