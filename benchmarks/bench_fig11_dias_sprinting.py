"""Figure 11 — the complete DiAS: approximation plus sprinting, and energy.

Regenerates the three panels of Fig. 11 on the graph-analytics workload
(high:low = 3:7, equal sizes):

* (a) latency of P vs DiAS(0,10)/DiAS(0,20) under the limited sprinting budget
  (22 kJ, 65 s timeout),
* (b) the same under the unlimited budget (sprint from dispatch),
* (c) the total energy of every variant relative to P.

Expected shape (paper): both classes improve (low ≈90 %, high 40–60 %
depending on the budget), and energy drops despite the ×1.5 sprint power —
more for the unlimited budget and for larger drop ratios.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    figure11_dias_sprinting,
    figure11_energy_comparison,
)
from repro.experiments.reporting import format_comparison, format_rows
from repro.workloads.scenarios import HIGH, LOW


@pytest.mark.parametrize("budget", ["limited", "unlimited"])
def test_figure11_latency(benchmark, record_series, budget):
    comparison = benchmark.pedantic(
        figure11_dias_sprinting,
        kwargs={"budget": budget, "num_jobs": 400, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series(
        f"figure11_latency_{budget}",
        format_comparison(comparison, f"Figure 11 — DiAS latency ({budget} sprinting)"),
    )
    assert comparison.relative_difference("DiAS(0/20)", LOW, "mean") < -40.0
    assert comparison.relative_difference("DiAS(0/20)", HIGH, "mean") < 0.0
    assert comparison.result("DiAS(0/20)").sprinted_seconds > 0.0


def test_figure11_energy(benchmark, record_series):
    result = benchmark.pedantic(
        figure11_energy_comparison,
        kwargs={"num_jobs": 300, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series("figure11_energy", format_rows(result["rows"]))
    rows = {(r["budget"], r["policy"]): r for r in result["rows"]}
    for budget in ("limited", "unlimited"):
        assert rows[(budget, "DiAS(0/20)")]["diff_pct"] < 0.0
