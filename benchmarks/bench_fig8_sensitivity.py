"""Figure 8 — sensitivity analysis of differential approximation.

Regenerates the three sensitivity variants of the reference setup:

* (a) equal job sizes for both priorities,
* (b) inverted arrival ratio (many high-priority jobs),
* (c) 50 % system load.

Expected shape (paper): equal sizes enlarge the gains; a high-priority-heavy
mix shrinks the low-priority tail gains; at 50 % load P and NP come closer
together and DA(0,20) keeps most of its gain.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure8_sensitivity
from repro.experiments.reporting import format_comparison
from repro.workloads.scenarios import HIGH, LOW


@pytest.mark.parametrize("variant", ["equal_sizes", "more_high_priority", "low_load"])
def test_figure8_sensitivity(benchmark, record_series, variant):
    comparison = benchmark.pedantic(
        figure8_sensitivity,
        kwargs={"variant": variant, "num_jobs": 500, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series(
        f"figure8_{variant}",
        format_comparison(comparison, f"Figure 8 — {variant}"),
    )
    # Differential approximation always improves the low-priority mean latency.
    assert comparison.relative_difference("DA(0/20)", LOW, "mean") < 0.0
    assert comparison.result("DA(0/20)").resource_waste == 0.0
