"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper.  Besides being
timed by pytest-benchmark, each benchmark writes the reproduced data series to
``benchmarks/results/<name>.txt`` (and prints it), so running::

    pytest benchmarks/ --benchmark-only

leaves a plain-text copy of every reproduced series on disk regardless of
output capturing.  Benchmarks that compare policies (fleet routing, DAG stage
scheduling) additionally persist machine-readable results through
``record_json``: ``benchmarks/results/<name>.json`` holds the metric rows
plus the seeds and configuration that produced them, so downstream tooling
can diff runs without parsing the formatted tables.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_series(results_dir):
    """Return a function that persists (and prints) a reproduced series."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return _record


@pytest.fixture
def record_json(results_dir):
    """Return a function that persists machine-readable benchmark results.

    ``benchmarks/results/<name>.json`` gets a single JSON object::

        {"benchmark": <name>, "seeds": [...], "config": {...}, "rows": [...]}

    ``rows`` is the list of metric mappings the benchmark also formats as
    text; ``config`` records the knobs (scenario, cluster count, policy, ...)
    needed to regenerate them.  Keys are sorted so reruns at the same seed
    produce byte-identical files.
    """

    def _record(
        name: str,
        rows: Sequence[Mapping[str, Any]],
        seeds: Optional[Sequence[int]] = None,
        config: Optional[Mapping[str, Any]] = None,
    ) -> None:
        payload = {
            "benchmark": name,
            "seeds": list(seeds) if seeds is not None else [],
            "config": dict(config) if config is not None else {},
            "rows": [dict(row) for row in rows],
        }
        path = results_dir / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    return _record
