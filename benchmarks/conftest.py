"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper.  Besides being
timed by pytest-benchmark, each benchmark writes the reproduced data series to
``benchmarks/results/<name>.txt`` (and prints it), so running::

    pytest benchmarks/ --benchmark-only

leaves a plain-text copy of every reproduced series on disk regardless of
output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_series(results_dir):
    """Return a function that persists (and prints) a reproduced series."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return _record
