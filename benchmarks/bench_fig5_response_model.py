"""Figure 5 — validation of the response-time model at 80 % load.

Regenerates the model-predicted vs simulated mean job response time of both
priority classes as the low-priority drop ratio grows, in the reference setup
(low:high = 9:1, sizes 1117/473 MB).  The paper reports an average model error
of 18.7 %; the benchmark records the reproduced error.
"""

from __future__ import annotations

from repro.experiments.figures import figure5_response_time_validation
from repro.experiments.reporting import format_figure


def test_figure5_response_time_validation(benchmark, record_series):
    result = benchmark.pedantic(
        figure5_response_time_validation,
        kwargs={"drop_ratios": (0.0, 0.2, 0.4, 0.6, 0.8), "num_jobs": 400, "seed": 1},
        rounds=1,
        iterations=1,
    )
    record_series("figure5_response_time", format_figure(result, "Figure 5"))
    low_rows = {r["drop_ratio"]: r for r in result["rows"] if r["priority"] == 0}
    assert low_rows[0.8]["observed_s"] < low_rows[0.0]["observed_s"]
    assert low_rows[0.8]["model_s"] < low_rows[0.0]["model_s"]
