#!/usr/bin/env python
"""Kernel + parallel-engine performance benchmark, recorded to BENCH_perf.json.

Measures, in one run:

1. **DES event-loop throughput** of the optimised kernel against the retained
   pre-PR reference implementation (embedded below verbatim: dataclass
   events, ``itertools.count`` sequencing, ``peek``/``step`` delegation, no
   heap compaction) on two workloads:

   * ``chain`` — self-rescheduling ticks over a small steady-state heap; the
     classic "event loop overhead" measurement.
   * ``timeout_storm`` — every tick arms a far-future timeout event and
     cancels the previously armed one, the sprint-timeout/preemption/DVFS
     pattern that motivates heap compaction.  The reference kernel's heap
     grows without bound here; the optimised kernel compacts.

   Since the telemetry PR the optimised kernel is additionally compared
   against the retained **PR 3 kernel** (embedded verbatim: the same
   optimised hot loop, but with no telemetry attribute or probe site).  The
   benchmark **fails (exit 1) when the telemetry-off kernel falls below 95%
   of the PR 3 kernel's throughput** — the probes must stay zero-cost when
   disabled.

2. **Simulation throughput** (jobs/sec) of a full DiAS run on the reference
   two-priority scenario, with a telemetry-off vs telemetry-on column: the
   same run once with the disabled null hub and once streaming probes plus
   periodic samples into an in-memory ring sink.

3. **Fault-injection overhead**: the same DiAS run against the retained
   **PR 7 execution module** (``benchmarks/_pr7_execution.py``, verbatim:
   no fault branches), with faults disabled and with a mixed
   crash/straggler/taskfail plan enabled.  The benchmark **fails (exit 1)
   when the faults-off run falls below 95% of the PR 7 baseline** —
   injection must stay zero-cost when disabled, like telemetry.

4. **Parallel replication speedup**: eight replications of a policy
   comparison executed serially and with ``--jobs N`` worker processes, plus
   a bitwise-equality check between the serial and parallel metric samples.
   The benchmark **fails (exit 1) if serial/parallel equivalence is
   violated** — wall-clock speedup depends on the host's core count (recorded
   in the output), equivalence must hold everywhere.  On a single-CPU host
   the wall-clock section is marked ``"unreliable": true`` (no parallelism
   to measure), but the bitwise-equality check still runs and still gates.

Usage::

    python benchmarks/bench_kernel_throughput.py             # full run
    python benchmarks/bench_kernel_throughput.py --quick     # CI smoke mode
    python benchmarks/bench_kernel_throughput.py --jobs 4 --output BENCH_perf.json
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.policies import SchedulingPolicy  # noqa: E402
from repro.experiments.parallel import PolicyComparisonExperiment  # noqa: E402
from repro.simulation.des import Simulator  # noqa: E402
from repro.simulation.replication import ReplicationRunner  # noqa: E402
from repro.workloads import scenarios as scenario_module  # noqa: E402


# ---------------------------------------------------------------------------
# Retained reference implementation: the pre-PR kernel, verbatim.  Kept here
# (not in src/) so the speedup is measured against the same baseline in every
# future run instead of a number recorded once and never re-validated.
# ---------------------------------------------------------------------------
@dataclass(order=False)
class _LegacyEvent:
    time: float
    priority: int
    seq: int
    callback: Callable[["_LegacySimulator"], None]
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class _LegacySimulator:
    """The seed kernel: dataclass events, peek/step delegation, no compaction."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._event_count = 0
        self._processed = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def schedule(self, delay, callback, *, priority=0, payload=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority=priority, payload=payload)

    def schedule_at(self, time, callback, *, priority=0, payload=None):
        if time < self._now:
            raise ValueError(f"schedule in the past {time!r}")
        event = _LegacyEvent(
            time=float(time), priority=int(priority), seq=next(self._seq),
            callback=callback, payload=payload,
        )
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._event_count += 1
        return event

    def peek_time(self):
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(self)
            return event
        return None

    def run(self, until=None, max_events=None):
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    def stop(self) -> None:
        self._stopped = True

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)


# ---------------------------------------------------------------------------
# Retained PR 3 kernel, verbatim: the optimised hot loop as it stood before
# the telemetry layer (no ``telemetry`` slot, no probe site in compaction).
# The telemetry-off regression guard measures today's kernel against this.
# ---------------------------------------------------------------------------
_PR3_MIN_COMPACTION_WATERMARK = 64


class _PR3Event:
    __slots__ = ("time", "priority", "seq", "callback", "payload", "cancelled")

    def __init__(self, time, priority, seq, callback, payload=None, cancelled=False):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = cancelled

    def cancel(self) -> None:
        self.cancelled = True


class _PR3Simulator:
    """The PR 3 kernel: optimised loops and compaction, no telemetry."""

    __slots__ = (
        "_now", "_heap", "_seq", "_processed", "_running", "_stopped",
        "_compactions", "_compaction_threshold", "_compaction_watermark",
    )

    def __init__(self, start_time: float = 0.0, compaction_threshold: Optional[int] = 512) -> None:
        self._now = float(start_time)
        self._heap: List[tuple] = []
        self._seq = 0
        self._processed = 0
        self._running = False
        self._stopped = False
        self._compactions = 0
        self._compaction_threshold = int(compaction_threshold or 0)
        self._compaction_watermark = _PR3_MIN_COMPACTION_WATERMARK

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def schedule(self, delay, callback, *, priority=0, payload=None):
        if delay < 0:
            raise ValueError(f"cannot schedule event with negative delay {delay!r}")
        if priority.__class__ is not int:
            priority = int(priority)
        seq = self._seq
        self._seq = seq + 1
        event = _PR3Event(self._now + delay, priority, seq, callback, payload)
        heap = self._heap
        heapq.heappush(heap, (event.time, priority, seq, event))
        if len(heap) >= self._compaction_watermark:
            self._maybe_compact()
        return event

    def run(self, until=None, max_events=None):
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                while heap:
                    if self._stopped:
                        break
                    event = pop(heap)[3]
                    if event.cancelled:
                        continue
                    self._now = event.time
                    executed += 1
                    event.callback(self)
            elif until is None:
                while heap:
                    if self._stopped or executed >= max_events:
                        break
                    event = pop(heap)[3]
                    if event.cancelled:
                        continue
                    self._now = event.time
                    executed += 1
                    event.callback(self)
            else:
                while heap:
                    if self._stopped:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        pop(heap)
                        continue
                    event_time = entry[0]
                    if until is not None and event_time > until:
                        self._now = until
                        break
                    pop(heap)
                    self._now = event_time
                    executed += 1
                    event.callback(self)
        finally:
            self._running = False
            self._processed += executed
        if until is not None and self._now < until and not heap:
            self._now = until
        return self._now

    def stop(self) -> None:
        self._stopped = True

    def _maybe_compact(self) -> None:
        heap = self._heap
        threshold = self._compaction_threshold
        if threshold:
            dead = 0
            for entry in heap:
                if entry[3].cancelled:
                    dead += 1
            if dead >= threshold and dead * 2 >= len(heap):
                heap[:] = [entry for entry in heap if not entry[3].cancelled]
                heapq.heapify(heap)
                self._compactions += 1
        self._compaction_watermark = max(len(self._heap) * 2, _PR3_MIN_COMPACTION_WATERMARK)


# ---------------------------------------------------------------------------
# Kernel workloads
# ---------------------------------------------------------------------------
def _tick(sim) -> None:
    sim.schedule(1.0, _tick)


def _chain_workload(sim, num_events: int, chains: int = 16) -> None:
    """Self-rescheduling ticks over a small steady-state heap."""
    for i in range(chains):
        sim.schedule(float(i) / chains, _tick)
    sim.run(max_events=num_events)


def _noop(sim) -> None:
    pass


def _timeout_storm_workload(sim, num_events: int) -> None:
    """Arm a far-future timeout per tick, cancelling the previous one.

    Mirrors sprint timeouts / preemption / DVFS churn: without compaction the
    heap accumulates one dead far-future entry per processed event.
    """
    state: Dict[str, Any] = {"timeout": None, "count": 0}

    def tick(s) -> None:
        state["count"] += 1
        previous = state["timeout"]
        if previous is not None:
            previous.cancel()
        state["timeout"] = s.schedule(1e12, _noop)
        if state["count"] < num_events:
            s.schedule(1.0, tick)
        else:
            s.stop()

    sim.schedule(0.0, tick)
    sim.run()


def _best_of(repeats: int, run_once: Callable[[], float]) -> float:
    return min(run_once() for _ in range(repeats))


def _measure_kernel(
    workload: Callable, num_events: int, repeats: int
) -> Dict[str, float]:
    results: Dict[str, float] = {}
    kernels = (
        ("reference", _LegacySimulator),
        ("pr3", _PR3Simulator),
        ("optimized", Simulator),
    )
    # Rounds are interleaved across kernels (A B C, A B C, ...) rather than
    # measured back-to-back per kernel: on busy or frequency-scaled hosts a
    # monotonic drift over the measurement window would otherwise bias the
    # pairwise ratios — exactly what the off_vs_pr3 guard must not inherit.
    best: Dict[str, float] = {}
    final_heap: Dict[str, int] = {}
    for _ in range(repeats):
        for label, factory in kernels:
            sim = factory()
            start = time.perf_counter()
            workload(sim, num_events)
            elapsed = time.perf_counter() - start
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
            final_heap[label] = sim.pending_events
    for label, _factory in kernels:
        results[f"{label}_events_per_sec"] = num_events / best[label]
        results[f"{label}_final_heap"] = float(final_heap[label])
    results["speedup"] = (
        results["optimized_events_per_sec"] / results["reference_events_per_sec"]
    )
    # Telemetry-off regression guard: today's kernel (probes present but the
    # null hub disabled) against the retained PR 3 kernel (no probes at all).
    results["off_vs_pr3"] = (
        results["optimized_events_per_sec"] / results["pr3_events_per_sec"]
    )
    results["num_events"] = float(num_events)
    return results


# ---------------------------------------------------------------------------
# Simulation + parallel benchmarks
# ---------------------------------------------------------------------------
def _measure_simulation(num_jobs: int, repeats: int, seed: int) -> Dict[str, float]:
    from repro.experiments.harness import run_policies

    scenario = scenario_module.reference_two_priority_scenario()
    policy = [SchedulingPolicy.preemptive_priority()]

    def run_once() -> float:
        start = time.perf_counter()
        run_policies(scenario, policy, seed=seed, num_jobs=num_jobs)
        return time.perf_counter() - start

    elapsed = _best_of(repeats, run_once)
    return {"num_jobs": float(num_jobs), "jobs_per_sec": num_jobs / elapsed}


def _measure_telemetry(
    num_jobs: int, repeats: int, seed: int, sample_interval: float = 5.0
) -> Dict[str, float]:
    """Same DiAS run with telemetry off (null hub) vs on (ring sink + samples)."""
    from repro.core.dias import DiASSimulation
    from repro.engine.cluster import Cluster
    from repro.telemetry import NULL_HUB, RingBufferSink, TelemetryHub

    scenario = scenario_module.reference_two_priority_scenario()
    policy = SchedulingPolicy.preemptive_priority()
    trace = scenario.generate_trace(seed=seed, num_jobs=num_jobs)
    source = scenario.cluster

    def run_once(make_hub: Callable) -> Callable[[], float]:
        def once() -> float:
            hub = make_hub()
            cluster = Cluster(
                config=source.config, dvfs=source.dvfs, power_model=source.power_model
            )
            simulation = DiASSimulation(
                policy=policy, jobs=trace, cluster=cluster, seed=seed, telemetry=hub
            )
            start = time.perf_counter()
            simulation.run()
            elapsed = time.perf_counter() - start
            once.events = getattr(hub, "events_emitted", 0)  # type: ignore[attr-defined]
            return elapsed
        return once

    def on_hub() -> TelemetryHub:
        hub = TelemetryHub(sample_interval=sample_interval)
        hub.add_sink(RingBufferSink(capacity=1 << 16))
        return hub

    off = run_once(lambda: NULL_HUB)
    on = run_once(on_hub)
    # Interleave off/on repeats (rather than two sequential _best_of blocks)
    # so a transient noise window — CI neighbours, frequency scaling — hits
    # both sides instead of skewing the overhead ratio one way.
    off_elapsed = float("inf")
    on_elapsed = float("inf")
    # Each run is tens of milliseconds, so a higher repeat floor is cheap and
    # keeps the gated overhead ratio stable on noisy shared machines.
    for _ in range(max(repeats, 5)):
        off_elapsed = min(off_elapsed, off())
        on_elapsed = min(on_elapsed, on())
    return {
        "num_jobs": float(num_jobs),
        "sample_interval_s": sample_interval,
        "off_jobs_per_sec": num_jobs / off_elapsed,
        "on_jobs_per_sec": num_jobs / on_elapsed,
        "on_overhead_pct": 100.0 * (on_elapsed - off_elapsed) / off_elapsed,
        "events_emitted": float(on.events),  # type: ignore[attr-defined]
    }


def _measure_faults(num_jobs: int, repeats: int, seed: int) -> Dict[str, float]:
    """Fault-injection overhead: PR 7 baseline vs faults-off vs faults-on.

    ``pr7`` swaps in the retained pre-fault-injection ``JobExecution``
    (``benchmarks/_pr7_execution.py``, verbatim) for the same DiAS run —
    the faults-off regression gate measures today's hot path (fault branches
    present but ``faults=None``) against it.  ``faults_on`` runs a mixed
    crash/straggler/taskfail plan to record what injection actually costs.
    """
    import repro.core.dias as dias_module
    from repro.engine.cluster import Cluster

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import _pr7_execution

    class _PR7JobExecution(_pr7_execution.JobExecution):
        # Today's DiASSimulation always passes the fault kwargs; with no
        # injector they carry no information, so strip them for the
        # retained constructor.  Per-job, not per-event: negligible.
        def __init__(self, *args, faults=None, on_give_up=None, **kwargs):
            assert faults is None and on_give_up is None
            super().__init__(*args, **kwargs)

    scenario = scenario_module.reference_two_priority_scenario()
    policy = SchedulingPolicy.preemptive_priority()
    trace = scenario.generate_trace(seed=seed, num_jobs=num_jobs)
    source = scenario.cluster
    fault_spec = (
        "crash:mttf=2000,repair=40;stragglers:p=0.1,slowdown=3,speculate=1.5;"
        "taskfail:p=0.05,retries=2"
    )

    def run_once(execution_cls, faults) -> float:
        cluster = Cluster(
            config=source.config, dvfs=source.dvfs, power_model=source.power_model
        )
        original = dias_module.JobExecution
        dias_module.JobExecution = execution_cls
        try:
            simulation = dias_module.DiASSimulation(
                policy=policy, jobs=trace, cluster=cluster, seed=seed, faults=faults
            )
            start = time.perf_counter()
            simulation.run()
            return time.perf_counter() - start
        finally:
            dias_module.JobExecution = original

    variants = (
        ("pr7", _PR7JobExecution, None),
        ("faults_off", dias_module.JobExecution, None),
        ("faults_on", dias_module.JobExecution, fault_spec),
    )
    # Interleaved rounds for the same reason as _measure_kernel: the 5%
    # off_vs_pr7 gate must not inherit monotonic host drift.
    best: Dict[str, float] = {}
    for _ in range(max(repeats, 5)):
        for label, execution_cls, faults in variants:
            elapsed = run_once(execution_cls, faults)
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    results = {
        "num_jobs": float(num_jobs),
        "fault_spec": fault_spec,
        "pr7_jobs_per_sec": num_jobs / best["pr7"],
        "off_jobs_per_sec": num_jobs / best["faults_off"],
        "on_jobs_per_sec": num_jobs / best["faults_on"],
    }
    results["off_vs_pr7"] = results["off_jobs_per_sec"] / results["pr7_jobs_per_sec"]
    results["on_overhead_pct"] = 100.0 * (
        best["faults_on"] - best["faults_off"]
    ) / best["faults_off"]
    return results


def _measure_parallel(
    num_jobs: int, replications: int, jobs: int, seed: int
) -> Dict[str, Any]:
    scenario = scenario_module.reference_two_priority_scenario()
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation(
            {p: (0.2 if p == scenario.lowest_priority else 0.0)
             for p in scenario.priorities}
        ),
    ]
    experiment = PolicyComparisonExperiment(scenario, policies, num_jobs=num_jobs)

    start = time.perf_counter()
    serial = ReplicationRunner(experiment).run(replications, base_seed=seed, jobs=1)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ReplicationRunner(experiment).run(replications, base_seed=seed, jobs=jobs)
    parallel_elapsed = time.perf_counter() - start

    serial_samples = {name: metric.samples for name, metric in serial.items()}
    parallel_samples = {name: metric.samples for name, metric in parallel.items()}
    return {
        "num_jobs": float(num_jobs),
        "replications": float(replications),
        "jobs": float(jobs),
        "serial_seconds": serial_elapsed,
        "parallel_seconds": parallel_elapsed,
        "speedup": serial_elapsed / parallel_elapsed if parallel_elapsed else float("nan"),
        "bitwise_equal": serial_samples == parallel_samples,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel-speedup section")
    parser.add_argument("--replications", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=str(Path(__file__).resolve().parents[1] / "BENCH_perf.json"))
    args = parser.parse_args(argv)

    if args.quick:
        chain_events, storm_events, sim_jobs, par_jobs, repeats = 60_000, 30_000, 80, 30, 2
    else:
        chain_events, storm_events, sim_jobs, par_jobs, repeats = 300_000, 200_000, 300, 100, 3

    print("== DES kernel event-loop throughput (vs retained pre-PR reference) ==")
    # The off_vs_pr3 gate compares two near-identical kernels at a 5% margin;
    # best-of needs more rounds than the coarse sections to beat host noise.
    kernel_repeats = max(repeats, 7)
    chain = _measure_kernel(_chain_workload, chain_events, kernel_repeats)
    print(f"chain:         reference {chain['reference_events_per_sec']:,.0f} ev/s   "
          f"pr3 {chain['pr3_events_per_sec']:,.0f} ev/s   "
          f"optimized {chain['optimized_events_per_sec']:,.0f} ev/s   "
          f"speedup {chain['speedup']:.2f}x   off_vs_pr3 {chain['off_vs_pr3']:.3f}")
    storm = _measure_kernel(_timeout_storm_workload, storm_events, kernel_repeats)
    print(f"timeout_storm: reference {storm['reference_events_per_sec']:,.0f} ev/s   "
          f"pr3 {storm['pr3_events_per_sec']:,.0f} ev/s   "
          f"optimized {storm['optimized_events_per_sec']:,.0f} ev/s   "
          f"speedup {storm['speedup']:.2f}x   off_vs_pr3 {storm['off_vs_pr3']:.3f}   "
          f"final heap {storm['reference_final_heap']:.0f} -> {storm['optimized_final_heap']:.0f}")

    print("== DiAS simulation throughput ==")
    simulation = _measure_simulation(sim_jobs, repeats, args.seed)
    print(f"reference scenario: {simulation['jobs_per_sec']:,.1f} jobs/s")

    print("== Telemetry overhead (off = null hub, on = ring sink + samples) ==")
    telemetry = _measure_telemetry(sim_jobs, repeats, args.seed)
    print(f"telemetry off {telemetry['off_jobs_per_sec']:,.1f} jobs/s   "
          f"on {telemetry['on_jobs_per_sec']:,.1f} jobs/s   "
          f"overhead {telemetry['on_overhead_pct']:.1f}%   "
          f"events {telemetry['events_emitted']:,.0f}")

    print("== Fault-injection overhead (pr7 = retained baseline, off = faults=None) ==")
    faults = _measure_faults(sim_jobs, repeats, args.seed)
    print(f"pr7 {faults['pr7_jobs_per_sec']:,.1f} jobs/s   "
          f"faults off {faults['off_jobs_per_sec']:,.1f} jobs/s   "
          f"on {faults['on_jobs_per_sec']:,.1f} jobs/s   "
          f"off_vs_pr7 {faults['off_vs_pr7']:.3f}   "
          f"on overhead {faults['on_overhead_pct']:.1f}%")

    print(f"== Parallel replication ({args.replications} replications, --jobs {args.jobs}) ==")
    parallel = _measure_parallel(par_jobs, args.replications, args.jobs, args.seed)
    host_cpus = os.cpu_count()
    if host_cpus == 1:
        # The bitwise-equality check below still runs and still gates — only
        # the wall-clock speedup number is meaningless without real cores.
        parallel["unreliable"] = True
        parallel["unreliable_reason"] = (
            "single-CPU host: parallel wall-clock speedup cannot be measured"
        )
    if host_cpus is not None and host_cpus < 4:
        # The recorded speedup target assumes 4 workers on 4 physical cores;
        # fewer cores than that depresses the number without implying a
        # regression, so downstream comparisons should not trend this run.
        parallel["degraded_host"] = True
        parallel["degraded_host_note"] = (
            f"host has {host_cpus} CPU(s) but the speedup target assumes "
            ">= 4; wall-clock speedup is expected to fall short here"
        )
    print(f"serial {parallel['serial_seconds']:.2f}s   parallel {parallel['parallel_seconds']:.2f}s   "
          f"speedup {parallel['speedup']:.2f}x   bitwise_equal {parallel['bitwise_equal']}"
          + ("   [unreliable: single CPU]" if parallel.get("unreliable") else "")
          + (f"   [degraded host: {host_cpus} CPUs]"
             if parallel.get("degraded_host") else ""))

    payload = {
        "benchmark": "bench_kernel_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "kernel": {"chain": chain, "timeout_storm": storm},
        "simulation": simulation,
        "telemetry": telemetry,
        "faults": faults,
        "parallel": parallel,
        "targets": {
            "kernel_speedup": 2.0,
            "parallel_speedup_at_4_jobs": 2.5,
            "telemetry_off_vs_pr3_min": 0.95,
            "telemetry_on_overhead_max_pct": 60.0,
            "faults_off_vs_pr7_min": 0.95,
            "note": "parallel wall-clock speedup requires >= jobs physical cores; "
                    "bitwise serial/parallel equivalence is asserted on every host",
        },
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    failed = False
    if not parallel["bitwise_equal"]:
        print("FAIL: parallel metrics differ from serial metrics", file=sys.stderr)
        failed = True
    off_vs_pr3 = min(chain["off_vs_pr3"], storm["off_vs_pr3"])
    if off_vs_pr3 < 0.95:
        print(
            f"FAIL: telemetry-off kernel at {off_vs_pr3:.3f}x of the PR 3 kernel "
            f"(threshold 0.95) — the disabled probe path must stay zero-cost",
            file=sys.stderr,
        )
        failed = True
    if telemetry["on_overhead_pct"] > 60.0:
        print(
            f"FAIL: telemetry-on overhead at {telemetry['on_overhead_pct']:.1f}% "
            f"(threshold 60%) — the enabled emit/sink path has regressed",
            file=sys.stderr,
        )
        failed = True
    if faults["off_vs_pr7"] < 0.95:
        print(
            f"FAIL: faults-off simulation at {faults['off_vs_pr7']:.3f}x of the "
            f"retained PR 7 baseline (threshold 0.95) — fault injection must "
            f"stay zero-cost when disabled",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
