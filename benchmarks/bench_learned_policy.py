#!/usr/bin/env python
"""Learned-policy benchmark: hook overhead gate + bandit-vs-heuristic CRN duel.

Two sections, recorded to ``benchmarks/results/BENCH_learned_policy.json``:

1. **Decision-hook overhead.** The decision-point refactor added one
   attribute check per scheduling/routing decision to the hot paths
   (``DagExecution._fill_slots`` / ``FleetSimulation._route``).  This section
   times the current hookless path against the retained PR 9 bodies
   (``benchmarks/_pr9_decisions.py``, monkeypatched verbatim onto the live
   classes) and **fails (exit 1) when the current path falls below 95% of
   the PR 9 baseline** — an unattached hook must stay effectively free.

2. **Learned policies vs naive heuristics under common random numbers.**
   Trains the contextual bandits in their decision envs, then evaluates the
   frozen policies against heuristic baselines over a shared CRN seed
   stream:

   * routing: LinUCB vs the ``random`` and ``jsq`` dispatchers on fleet
     p95 response time;
   * scheduling: epsilon-greedy vs the ``fifo`` and ``critical_path_first``
     stage schedulers on mean DAG makespan.

   The benchmark **fails (exit 1) unless a learned agent beats at least one
   naive baseline** (LinUCB < random on p95, or epsilon-greedy < fifo on
   makespan) — the envs must be learnable, not merely runnable.

Usage::

    python benchmarks/bench_learned_policy.py             # full run
    python benchmarks/bench_learned_policy.py --quick     # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _pr9_decisions import pr9_fill_slots, pr9_route  # noqa: E402

from repro.core.policies import SchedulingPolicy  # noqa: E402
from repro.dag.execution import DagExecution  # noqa: E402
from repro.dag.simulation import DagSimulation  # noqa: E402
from repro.env import (  # noqa: E402
    BuiltinAgent,
    EnvSpec,
    EpsilonGreedyAgent,
    LinUCBAgent,
    SchedulerAgent,
    evaluate,
    train,
)
from repro.env.learn import summarise  # noqa: E402
from repro.fleet.simulation import FleetSimulation  # noqa: E402
from repro.workloads import scenarios as scenario_module  # noqa: E402

HOOK_OVERHEAD_MIN_RATIO = 0.95


def _policy() -> SchedulingPolicy:
    return SchedulingPolicy.differential_approximation({2: 0.0, 0: 0.2})


def _best_of(repeats: int, run_once: Callable[[], float]) -> float:
    return min(run_once() for _ in range(repeats))


# ---------------------------------------------------------------------------
# Section 1: hook overhead vs the retained PR 9 decision sites
# ---------------------------------------------------------------------------
def _time_dag_run(num_jobs: int, seed: int) -> float:
    scenario = scenario_module.dag_layered_scenario(num_jobs=num_jobs)
    trace = scenario.generate_trace(seed=seed)
    start = time.perf_counter()
    DagSimulation(
        policy=_policy(),
        jobs=trace,
        scheduler="critical_path_first",
        cluster=scenario.cluster,
        seed=seed,
    ).run()
    return time.perf_counter() - start


def _time_fleet_run(num_jobs: int, seed: int) -> float:
    scenario = scenario_module.fleet_two_priority_scenario(
        num_clusters=4, num_jobs_per_cluster=num_jobs
    )
    trace = scenario.generate_trace(seed=seed)
    clusters = scenario.make_clusters()
    start = time.perf_counter()
    FleetSimulation(
        policy=_policy(),
        jobs=trace,
        clusters=clusters,
        dispatcher="jsq",
        seed=seed,
    ).run()
    return time.perf_counter() - start


def _measure_hook_overhead(
    num_dag_jobs: int, num_fleet_jobs: int, repeats: int, seed: int
) -> Dict[str, Dict[str, float]]:
    """Interleave current/pr9 repeats so host drift hits both sides equally."""
    sections = {}
    patches = {
        "dag": (DagExecution, "_fill_slots", pr9_fill_slots,
                lambda: _time_dag_run(num_dag_jobs, seed)),
        "fleet": (FleetSimulation, "_route", pr9_route,
                  lambda: _time_fleet_run(num_fleet_jobs, seed)),
    }
    for name, (cls, attr, baseline_fn, run_once) in patches.items():
        current_times: List[float] = []
        baseline_times: List[float] = []
        original = getattr(cls, attr)
        for _ in range(repeats):
            current_times.append(run_once())
            setattr(cls, attr, baseline_fn)
            try:
                baseline_times.append(run_once())
            finally:
                setattr(cls, attr, original)
        current = min(current_times)
        baseline = min(baseline_times)
        sections[name] = {
            "pr9_seconds": baseline,
            "current_seconds": current,
            "current_vs_pr9": baseline / current,
        }
    return sections


# ---------------------------------------------------------------------------
# Section 2: learned policies vs naive heuristics (CRN)
# ---------------------------------------------------------------------------
def _duel(
    spec: EnvSpec,
    agent,
    baselines: Dict[str, Callable[[], tuple]],
    train_episodes: int,
    eval_episodes: int,
    eval_seed: int,
) -> Dict[str, object]:
    """Train ``agent`` on ``spec``, then CRN-evaluate it and every baseline.

    ``baselines`` maps a display name to a ``() -> (spec, agent)`` thunk so
    routing baselines can swap the dispatcher while reusing the seeds.
    """
    history = train(spec, agent, episodes=train_episodes)
    key = spec.key_metric
    summary: Dict[str, Dict[str, float]] = {
        agent.name: summarise(
            evaluate(spec, agent, episodes=eval_episodes, base_seed=eval_seed)
        )
    }
    for name, build in baselines.items():
        base_spec, base_agent = build()
        summary[name] = summarise(
            evaluate(base_spec, base_agent, episodes=eval_episodes,
                     base_seed=eval_seed)
        )
    return {
        "key_metric": key,
        "train_episodes": train_episodes,
        "eval_episodes": eval_episodes,
        "train_first_reward": history[0]["reward"],
        "train_last_reward": history[-1]["reward"],
        "learned": agent.name,
        "summary": summary,
    }


def _routing_duel(quick: bool) -> Dict[str, object]:
    spec = EnvSpec(
        env="routing",
        policy=_policy(),
        scenario="two-priority",
        clusters=4,
        num_jobs=60 if quick else 160,
    )
    return _duel(
        spec,
        LinUCBAgent(alpha=1.0),
        {
            "random": lambda: (spec.with_dispatcher("random"), BuiltinAgent()),
            "jsq": lambda: (spec.with_dispatcher("jsq"), BuiltinAgent()),
        },
        train_episodes=3 if quick else 8,
        eval_episodes=3 if quick else 5,
        eval_seed=1000,
    )


def _scheduling_duel(quick: bool) -> Dict[str, object]:
    spec = EnvSpec(
        env="scheduling",
        policy=_policy(),
        scenario="layered",
        num_jobs=6 if quick else 20,
    )
    return _duel(
        spec,
        EpsilonGreedyAgent(epsilon=0.2, learning_rate=0.05),
        {
            "fifo": lambda: (spec, SchedulerAgent("fifo")),
            "critical_path_first": lambda: (
                spec, SchedulerAgent("critical_path_first")
            ),
        },
        train_episodes=4 if quick else 12,
        eval_episodes=3 if quick else 5,
        eval_seed=1000,
    )


def _wins(duel: Dict[str, object], baseline: str) -> bool:
    key = duel["key_metric"]
    summary = duel["summary"]
    return summary[duel["learned"]][key] < summary[baseline][key]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "results"
                    / "BENCH_learned_policy.json"),
    )
    args = parser.parse_args(argv)

    # The overhead gate compares two near-identical hot paths at a 5% margin
    # on sub-second runs; best-of needs enough rounds to beat host noise.
    if args.quick:
        dag_jobs, fleet_jobs, repeats = 8, 60, 7
    else:
        dag_jobs, fleet_jobs, repeats = 25, 150, 7

    print("== Decision-hook overhead (current hookless path vs retained PR 9) ==")
    overhead = _measure_hook_overhead(dag_jobs, fleet_jobs, repeats, args.seed)
    for name, section in overhead.items():
        print(f"{name}: pr9 {section['pr9_seconds']:.3f}s   "
              f"current {section['current_seconds']:.3f}s   "
              f"current_vs_pr9 {section['current_vs_pr9']:.3f}")

    print("== Routing duel: LinUCB vs random/jsq (fleet p95, CRN) ==")
    routing = _routing_duel(args.quick)
    for name, row in routing["summary"].items():
        print(f"{name:>8}: p95_response_s {row['p95_response_s']:.2f}   "
              f"mean_response_s {row['mean_response_s']:.2f}")

    print("== Scheduling duel: epsilon-greedy vs fifo/critical_path_first "
          "(DAG makespan, CRN) ==")
    scheduling = _scheduling_duel(args.quick)
    for name, row in scheduling["summary"].items():
        print(f"{name:>20}: mean_makespan_s {row['mean_makespan_s']:.2f}   "
              f"mean_cp_stretch {row['mean_cp_stretch']:.3f}")

    routing_beats_random = _wins(routing, "random")
    scheduling_beats_fifo = _wins(scheduling, "fifo")
    payload = {
        "benchmark": "bench_learned_policy",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "hook_overhead": overhead,
        "routing": routing,
        "scheduling": scheduling,
        "gates": {
            "hook_overhead_min_ratio": HOOK_OVERHEAD_MIN_RATIO,
            "routing_linucb_beats_random": routing_beats_random,
            "routing_linucb_beats_jsq": _wins(routing, "jsq"),
            "scheduling_bandit_beats_fifo": scheduling_beats_fifo,
            "scheduling_bandit_beats_cp_first": _wins(
                scheduling, "critical_path_first"
            ),
        },
    }
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    failed = False
    worst = min(section["current_vs_pr9"] for section in overhead.values())
    if worst < HOOK_OVERHEAD_MIN_RATIO:
        print(
            f"FAIL: hookless decision path at {worst:.3f}x of the PR 9 "
            f"baseline (threshold {HOOK_OVERHEAD_MIN_RATIO}) — the unattached "
            "hook must stay effectively free",
            file=sys.stderr,
        )
        failed = True
    if not (routing_beats_random or scheduling_beats_fifo):
        print(
            "FAIL: no learned agent beat a naive baseline (LinUCB vs random "
            "on p95, epsilon-greedy vs fifo on makespan) — the decision envs "
            "are not learnable as configured",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
