"""DAG stage scheduling — scheduler comparison on layered query-plan DAGs.

Runs the layered-DAG scenario (random 4-layer stage DAGs, two priority
classes) through every stage scheduler and compares per-job makespan, the
critical-path stretch (makespan over the per-job lower bound) and fleet-wide
response times.

Common random numbers: the job trace is generated from the seed alone —
never from the scheduler under test — so every scheduler sees a byte-identical
sequence of DAGs, and differences are pure scheduling effects.  Each
scheduler is evaluated on three fixed seeds and the per-job records pooled,
so results are bit-identical across repeated runs.

Expected shape: ``critical_path_first`` keeps the longest dependency chain
supplied with slots and lands closest to the lower bound, beating ``fifo``
on mean makespan; ``widest_first`` maximises instantaneous slot occupancy
but starves the critical path at join points.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.policies import SchedulingPolicy
from repro.dag.schedulers import STAGE_SCHEDULERS
from repro.dag.simulation import DagSimulation
from repro.experiments.reporting import format_rows
from repro.workloads.scenarios import HIGH, LOW, dag_layered_scenario

SEEDS = (0, 1, 2)
JOBS = 120


def _run_scheduler_comparison() -> List[Dict]:
    """One row per stage scheduler with pooled per-job metrics."""
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})
    rows: List[Dict] = []
    for scheduler in STAGE_SCHEDULERS:
        makespans: List[float] = []
        responses: List[float] = []
        stretches: List[float] = []
        for seed in SEEDS:
            scenario = dag_layered_scenario(num_jobs=JOBS)
            result = DagSimulation(
                policy=policy,
                jobs=scenario.generate_trace(seed=seed),
                scheduler=scheduler,
                cluster=scenario.cluster,
                seed=seed,
            ).run()
            makespans.extend(r.execution_time for r in result.metrics.records)
            responses.extend(r.response_time for r in result.metrics.records)
            stretches.extend(row["cp_stretch"] for row in result.dag_rows)
        rows.append(
            {
                "scheduler": scheduler,
                "mean_makespan_s": sum(makespans) / len(makespans),
                "mean_cp_stretch": sum(stretches) / len(stretches),
                "mean_response_s": sum(responses) / len(responses),
            }
        )
    return rows


def _by_scheduler(rows: List[Dict]) -> Dict[str, Dict]:
    return {row["scheduler"]: row for row in rows}


def test_dag_stage_scheduler_comparison(benchmark, record_series, record_json):
    rows = benchmark.pedantic(_run_scheduler_comparison, rounds=1, iterations=1)
    record_series("dag_stage_scheduling", format_rows(rows))
    record_json(
        "dag_stage_scheduling",
        rows,
        seeds=SEEDS,
        config={
            "scenario": "dag-layered",
            "jobs_per_seed": JOBS,
            "policy": "DA(0/20)",
            "schedulers": list(STAGE_SCHEDULERS),
        },
    )
    by_scheduler = _by_scheduler(rows)
    # The headline claim: prioritising the critical path beats FIFO on the
    # layered-DAG scenario's mean makespan.
    assert (
        by_scheduler["critical_path_first"]["mean_makespan_s"]
        < by_scheduler["fifo"]["mean_makespan_s"]
    )
    # And it sits closer to the per-job lower bound than any other scheduler.
    assert by_scheduler["critical_path_first"]["mean_cp_stretch"] == min(
        row["mean_cp_stretch"] for row in rows
    )
    # Every scheduler respects the lower bound (stretch >= 1).
    for row in rows:
        assert row["mean_cp_stretch"] >= 1.0


def test_dag_scheduling_is_deterministic(record_series, record_json):
    """The same seed and scheduler produce bit-identical DAG results."""
    policy = SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2})

    def once() -> Dict[str, float]:
        scenario = dag_layered_scenario(num_jobs=60)
        result = DagSimulation(
            policy=policy,
            jobs=scenario.generate_trace(seed=3),
            scheduler="critical_path_first",
            cluster=scenario.cluster,
            seed=3,
        ).run()
        return {
            "mean_makespan_s": result.mean_makespan(),
            "mean_response_s": result.mean_response_time(),
            "high_p95_s": result.tail_response_time(HIGH),
            "energy_j": result.total_energy_joules,
            "duration_s": result.duration,
        }

    first, second = once(), once()
    rows = [{"run": 1, **first}, {"run": 2, **second}]
    record_series("dag_scheduling_determinism", format_rows(rows))
    record_json(
        "dag_scheduling_determinism",
        rows,
        seeds=[3],
        config={"scenario": "dag-layered", "jobs": 60, "scheduler": "critical_path_first"},
    )
    assert first == second
