"""Trace ingestion & replay throughput — the million-job-scale data path.

Synthesizes a cluster trace, then times every leg of the replay pipeline:
writing the file, parsing it back (serial and with order-preserving parallel
ingestion), and streaming it through a fleet replay with streaming metrics.
The rates (jobs/s) are persisted as machine-readable JSON so regressions in
the ingest path show up as a diffable number, not a vague "replay feels slow".

The job count here is deliberately modest (the CI-friendly end of the curve);
the acceptance-scale million-job run is exercised manually via::

    repro synth-trace --out big.jsonl --num-jobs 1000000 --tasks-per-job 4
    repro fleet --replay big.jsonl
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.core.policies import SchedulingPolicy
from repro.experiments.reporting import format_rows
from repro.fleet.simulation import FleetSimulation
from repro.traces.formats import iter_trace
from repro.traces.replay import ReplaySource
from repro.traces.synth import compact_profiles, synthesize_trace
from repro.workloads.scenarios import reference_two_priority_scenario

NUM_JOBS = 20_000
TASKS_PER_JOB = 4
SEED = 0


def _timed(fn) -> Dict[str, float]:
    start = time.perf_counter()
    count = fn()
    elapsed = time.perf_counter() - start
    return {"jobs": count, "seconds": elapsed, "jobs_per_s": count / elapsed}


def _run_replay_pipeline(path: str) -> List[Dict]:
    scenario = compact_profiles(
        reference_two_priority_scenario(num_jobs=NUM_JOBS), TASKS_PER_JOB
    )
    rows: List[Dict] = []

    def synthesize() -> int:
        meta = synthesize_trace(path, scenario, num_jobs=NUM_JOBS, seed=SEED)
        return meta.jobs

    rows.append({"stage": "synthesize+write", **_timed(synthesize)})
    rows.append(
        {"stage": "parse-serial", **_timed(lambda: sum(1 for _ in iter_trace(path)))}
    )
    rows.append(
        {
            "stage": "parse-parallel-x4",
            **_timed(lambda: sum(1 for _ in iter_trace(path, jobs=4))),
        }
    )

    def replay() -> int:
        source = ReplaySource(path, mode="fleet")
        simulation = FleetSimulation(
            policy=SchedulingPolicy.differential_approximation({0: 0.2, 2: 0.0}),
            jobs=(),
            num_clusters=2,
            dispatcher="least_work_left",
            seed=SEED,
            job_source=source,
            streaming_metrics=True,
            traffic_shares=source.class_shares(),
        )
        result = simulation.run()
        assert result.completed_jobs == source.jobs_ingested
        return source.jobs_ingested

    rows.append({"stage": "fleet-replay", **_timed(replay)})
    return rows


def test_trace_replay_throughput(benchmark, record_series, record_json, tmp_path):
    path = str(tmp_path / "bench.jsonl")
    rows = benchmark.pedantic(
        _run_replay_pipeline, args=(path,), rounds=1, iterations=1
    )
    printable = [
        {**row, "seconds": round(row["seconds"], 3), "jobs_per_s": round(row["jobs_per_s"])}
        for row in rows
    ]
    record_series("trace_replay_throughput", format_rows(printable))
    record_json(
        "trace_replay_throughput",
        rows,
        seeds=(SEED,),
        config={
            "scenario": "reference",
            "format": "cluster-jsonl",
            "num_jobs": NUM_JOBS,
            "tasks_per_job": TASKS_PER_JOB,
            "clusters": 2,
            "dispatcher": "least_work_left",
        },
    )
    by_stage = {row["stage"]: row for row in rows}
    # Every leg ingested the full trace.
    assert all(row["jobs"] == NUM_JOBS for row in rows)
    # The ingest path is not the bottleneck: parsing alone must be faster
    # than the full replay (which parses AND simulates).
    assert by_stage["parse-serial"]["jobs_per_s"] > by_stage["fleet-replay"]["jobs_per_s"]
