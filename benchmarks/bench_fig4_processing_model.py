"""Figure 4 — validation of the job processing-time model.

Regenerates the model-vs-observed mean processing time as a function of the
task drop ratio for the two validation datasets (the 473 MB high-priority and
1117 MB low-priority profiles).  The paper reports mean model errors of 11.1 %
and 7.8 %; the benchmark records the reproduced error.
"""

from __future__ import annotations

from repro.experiments.figures import figure4_processing_time_validation
from repro.experiments.reporting import format_figure


def test_figure4_processing_time_validation(benchmark, record_series):
    result = benchmark.pedantic(
        figure4_processing_time_validation,
        kwargs={"drop_ratios": (0.0, 0.2, 0.4, 0.6, 0.8), "num_jobs": 25, "seed": 0},
        rounds=1,
        iterations=1,
    )
    record_series("figure4_processing_time", format_figure(result, "Figure 4"))
    assert result["mean_error_pct"] < 25.0
