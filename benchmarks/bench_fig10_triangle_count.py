"""Figure 10 — differential approximation on triangle count.

Regenerates the multi-stage graph-analytics experiment: P, NP and DA(0,θ) with
per-ShuffleMap-stage drop ratios θ ∈ {1, 2, 5, 10, 20} % applied to the
low-priority jobs.

Expected shape (paper): already at 5–10 % per-stage dropping the low-priority
mean latency improves by more than 50 %, and the tail latency of both classes
improves by a similar factor.

The benchmark also regenerates the *accuracy* side of the experiment by
running the real mini-MapReduce triangle count on a synthetic power-law graph
with the same per-stage drop ratios.
"""

from __future__ import annotations

from repro.experiments.figures import figure10_triangle_count
from repro.experiments.reporting import format_comparison, format_rows
from repro.mapreduce.triangle_count import triangle_count_accuracy_curve
from repro.workloads.graph import synthetic_web_graph
from repro.workloads.scenarios import HIGH, LOW

STAGE_DROP_RATIOS = (0.01, 0.02, 0.05, 0.10, 0.20)


def test_figure10_triangle_count_latency(benchmark, record_series):
    comparison = benchmark.pedantic(
        figure10_triangle_count,
        kwargs={"stage_drop_ratios": STAGE_DROP_RATIOS, "num_jobs": 400, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series(
        "figure10_triangle_count_latency",
        format_comparison(comparison, "Figure 10 — triangle count (latency)"),
    )
    assert comparison.relative_difference("DA(0/10)", LOW, "mean") < -40.0
    assert comparison.relative_difference("DA(0/5)", LOW, "mean") < -30.0


def test_figure10_triangle_count_accuracy(benchmark, record_series):
    edges = synthetic_web_graph(num_nodes=400, edges_per_node=4, triangle_probability=0.4,
                                seed=3)
    curve = benchmark.pedantic(
        triangle_count_accuracy_curve,
        kwargs={
            "edges": edges,
            "stage_drop_ratios": STAGE_DROP_RATIOS,
            "num_partitions": 20,
            "repetitions": 2,
            "seed": 5,
        },
        rounds=1,
        iterations=1,
    )
    rows = [{"stage_drop_ratio": theta, "relative_error_pct": err} for theta, err in curve]
    record_series(
        "figure10_triangle_count_accuracy",
        format_rows(rows),
    )
    errors = dict(curve)
    assert errors[0.01] <= errors[0.20] + 5.0
