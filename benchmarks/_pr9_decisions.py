"""Retained PR 9 decision-site bodies (pre decision-hook refactor).

``bench_learned_policy.py`` monkeypatches these verbatim copies of
``DagExecution._fill_slots`` and ``FleetSimulation._route`` — exactly as they
stood before the decision-hook branch was added — onto the live classes to
measure the PR 9 baseline throughput.  The gate then requires the current
hook-aware path (with no external agent attached) to stay within 95% of this
baseline, mirroring how ``_pr7_execution.py`` anchors the fault-injection
overhead gate.

Do not "fix" or modernise this module: its value is being frozen.
"""

from repro.dag.execution import _ActiveTask


def pr9_fill_slots(self) -> None:
    """Verbatim ``DagExecution._fill_slots`` as of PR 9 (no decision hook)."""
    while self._free_slots:
        eligible = [run for run in self._runs.values() if run.dispatchable]
        if not eligible:
            break
        run = self.scheduler.select(eligible)
        slot = self._free_slots.pop()
        duration = run.pop_task()
        if self._faults is not None:
            self._start_task(slot, run, duration, attempt=1)
            continue
        event = self.sim.schedule(
            duration / self._speed, self._make_task_callback(slot), priority=1
        )
        self._active[slot] = _ActiveTask(
            slot=slot,
            event=event,
            speed=self._speed,
            stage_run=run,
            started_at=self.sim.now,
            span_id=self.telemetry.new_span_id() if self.telemetry.tracing else 0,
        )


def pr9_route(self, job) -> None:
    """Verbatim ``FleetSimulation._route`` as of PR 9 (no decision hook)."""
    index = self.dispatcher.select(job, self.controllers)
    if not 0 <= index < self.num_clusters:
        raise ValueError(
            f"dispatcher {self.dispatcher.name!r} returned invalid cluster "
            f"index {index} for a fleet of {self.num_clusters}"
        )
    if self._quarantine:
        redirected = self._quarantine_redirect(index)
        if redirected != index:
            self.quarantine_redirects += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fault.quarantine",
                    self.sim.now,
                    src="fleet",
                    job_id=job.job_id,
                    cluster=index,
                    redirected=redirected,
                )
            index = redirected
    self._routed += 1
    self.dispatch_counts[index] += 1
    if self.telemetry.enabled:
        self.telemetry.emit(
            "job_routed",
            self.sim.now,
            src="fleet",
            job_id=job.job_id,
            priority=job.priority,
            cluster=index,
        )
    if self.telemetry.tracing:
        now = self.sim.now
        self.telemetry.emit(
            "span",
            now,
            src="fleet",
            span_id=self.telemetry.new_span_id(),
            parent_id=0,
            name="route",
            cat="route",
            start=now,
            job_id=job.job_id,
            cluster=index,
        )
    self.controllers[index].submit(job)
