"""Ablations of the design choices called out in DESIGN.md.

These are not paper figures; they quantify the impact of the main design
choices of the reproduction so that deviations from the paper can be traced to
a specific modelling decision:

1. wave-level vs task-level processing-time model (prediction accuracy),
2. sprint-at-dispatch vs sprint-after-timeout under a fixed budget,
3. dropping map tasks only vs dropping map and reduce tasks,
4. model-guided deflator vs fixed drop ratios,
5. preemptive-restart vs preemptive-resume (model-level queue).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SprintConfig
from repro.core.deflator import TaskDeflator
from repro.core.policies import SchedulingPolicy
from repro.experiments.harness import measure_processing_time, run_policies
from repro.experiments.reporting import format_rows
from repro.models.ph import PhaseType
from repro.models.priority_queue import PriorityClassInput, PriorityQueueModel
from repro.models.task_level import TaskLevelModel
from repro.models.wave_level import WaveLevelModel
from repro.workloads.scenarios import (
    HIGH,
    LOW,
    reference_two_priority_scenario,
    triangle_count_scenario,
)


def _ablation_model_choice():
    """Ablation 1: wave-level vs task-level model prediction error."""
    scenario = reference_two_priority_scenario()
    slots = scenario.cluster.slots
    rows = []
    for theta in (0.0, 0.2, 0.4):
        for priority in scenario.priorities:
            profile = scenario.profiles[priority]
            observed = measure_processing_time(profile, slots, theta, num_jobs=15, seed=2)
            wave = WaveLevelModel.from_profile(profile, slots, map_drop_ratio=theta)
            task = TaskLevelModel.from_profile(profile, slots, map_drop_ratio=theta)
            rows.append(
                {
                    "priority": priority,
                    "drop_ratio": theta,
                    "observed_s": observed,
                    "wave_model_error_pct": 100 * abs(wave.mean_processing_time() - observed) / observed,
                    "task_model_error_pct": 100 * abs(task.mean_processing_time() - observed) / observed,
                }
            )
    return rows


def test_ablation_wave_vs_task_model(benchmark, record_series):
    rows = benchmark.pedantic(_ablation_model_choice, rounds=1, iterations=1)
    record_series("ablation_wave_vs_task_model", format_rows(rows))
    mean_wave = sum(r["wave_model_error_pct"] for r in rows) / len(rows)
    assert mean_wave < 30.0


def _ablation_sprint_timeout():
    """Ablation 2: sprint timing under the same (limited) budget."""
    scenario = triangle_count_scenario(num_jobs=300)
    rows = []
    for label, timeout in (("at-dispatch", 0.0), ("after-65s", 65.0)):
        sprint = SprintConfig.limited_sprinting(
            budget_seconds=22_000.0 / 90.0, sprint_priorities={HIGH}, timeout=timeout
        )
        policies = [
            SchedulingPolicy.preemptive_priority(),
            SchedulingPolicy.dias({HIGH: 0.0, LOW: 0.2}, sprint=sprint,
                                  name=f"DiAS(0/20)-{label}"),
        ]
        comparison = run_policies(scenario, policies, baseline="P", seed=23)
        result = comparison.result(f"DiAS(0/20)-{label}")
        rows.append(
            {
                "sprint_timing": label,
                "high_mean_s": result.mean_response_time(HIGH),
                "high_diff_pct": comparison.relative_difference(f"DiAS(0/20)-{label}", HIGH),
                "low_diff_pct": comparison.relative_difference(f"DiAS(0/20)-{label}", LOW),
                "sprinted_s": result.sprinted_seconds,
                "energy_kj": result.total_energy_kilojoules,
            }
        )
    return rows


def test_ablation_sprint_timeout(benchmark, record_series):
    rows = benchmark.pedantic(_ablation_sprint_timeout, rounds=1, iterations=1)
    record_series("ablation_sprint_timeout", format_rows(rows))
    assert all(r["sprinted_s"] > 0 for r in rows)


def _ablation_reduce_dropping():
    """Ablation 3: dropping map tasks only vs map + reduce tasks."""
    scenario = reference_two_priority_scenario(num_jobs=400)
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2},
                                                    name="DA-map-only"),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.2},
                                                    reduce_drop_ratios={LOW: 0.2},
                                                    name="DA-map+reduce"),
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=29)
    rows = []
    for name in ("DA-map-only", "DA-map+reduce"):
        rows.append(
            {
                "policy": name,
                "low_diff_pct": comparison.relative_difference(name, LOW),
                "high_diff_pct": comparison.relative_difference(name, HIGH),
                "low_exec_s": comparison.result(name).mean_execution_time(LOW),
            }
        )
    return rows


def test_ablation_reduce_dropping(benchmark, record_series):
    rows = benchmark.pedantic(_ablation_reduce_dropping, rounds=1, iterations=1)
    record_series("ablation_reduce_dropping", format_rows(rows))
    by_name = {r["policy"]: r for r in rows}
    assert by_name["DA-map+reduce"]["low_exec_s"] <= by_name["DA-map-only"]["low_exec_s"] + 1e-6


def _ablation_deflator_vs_fixed():
    """Ablation 4: model-guided deflator choice vs fixed drop ratios."""
    scenario = reference_two_priority_scenario(num_jobs=400)
    deflator = TaskDeflator(
        profiles=scenario.profiles,
        arrival_rates=scenario.arrival_rates,
        slots=scenario.cluster.slots,
    )
    decision = deflator.choose(candidates=(0.0, 0.1, 0.2, 0.4))
    chosen_policy = SchedulingPolicy.differential_approximation(
        decision.drop_ratios, name="DA-deflator"
    )
    policies = [
        SchedulingPolicy.preemptive_priority(),
        SchedulingPolicy.differential_approximation({HIGH: 0.0, LOW: 0.1}, name="DA-fixed-10"),
        chosen_policy,
    ]
    comparison = run_policies(scenario, policies, baseline="P", seed=31)
    rows = []
    for name in ("DA-fixed-10", "DA-deflator"):
        result = comparison.result(name)
        rows.append(
            {
                "policy": name,
                "low_drop_ratio": (decision.drop_ratio(LOW) if name == "DA-deflator" else 0.1),
                "low_diff_pct": comparison.relative_difference(name, LOW),
                "low_accuracy_loss_pct": 100 * result.mean_accuracy_loss(LOW),
            }
        )
    return rows


def test_ablation_deflator_vs_fixed(benchmark, record_series):
    rows = benchmark.pedantic(_ablation_deflator_vs_fixed, rounds=1, iterations=1)
    record_series("ablation_deflator_vs_fixed", format_rows(rows))
    by_name = {r["policy"]: r for r in rows}
    assert by_name["DA-deflator"]["low_diff_pct"] <= by_name["DA-fixed-10"]["low_diff_pct"] + 5.0


def _ablation_restart_vs_resume():
    """Ablation 5: preemptive-restart vs preemptive-resume (model-level queue)."""
    high = PhaseType.fit_mean_scv(36.0, 0.3)
    low = PhaseType.fit_mean_scv(59.0, 0.3)
    model = PriorityQueueModel(
        [
            PriorityClassInput(priority=HIGH, arrival_rate=0.0014, service=high),
            PriorityClassInput(priority=LOW, arrival_rate=0.0127, service=low),
        ]
    )
    rows = []
    for discipline in ("preemptive_resume", "preemptive_restart", "nonpreemptive"):
        summary = model.simulated_summary(
            horizon=200_000.0, rng=np.random.default_rng(3), discipline=discipline
        )
        rows.append(
            {
                "discipline": discipline,
                "high_mean_s": summary[HIGH]["mean"],
                "low_mean_s": summary[LOW]["mean"],
                "low_tail_s": summary[LOW]["tail"],
            }
        )
    return rows


def test_ablation_restart_vs_resume(benchmark, record_series):
    rows = benchmark.pedantic(_ablation_restart_vs_resume, rounds=1, iterations=1)
    record_series("ablation_restart_vs_resume", format_rows(rows))
    by_discipline = {r["discipline"]: r for r in rows}
    # Restart-from-scratch (the paper's eviction baseline) is at least as bad
    # for the low class as resume.
    assert by_discipline["preemptive_restart"]["low_mean_s"] >= (
        by_discipline["preemptive_resume"]["low_mean_s"] * 0.9
    )
