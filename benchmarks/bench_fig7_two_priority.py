"""Figure 7 — two-priority reference setup.

Regenerates the Fig. 7 bars: absolute mean/tail latency of the preemptive
baseline (P) and the relative difference of NP, DA(0,10) and DA(0,20) for both
priority classes, together with the resource waste of P (§5.2.1 reports ~4 %).

Expected shape (paper): DA(0,20) improves the low-priority mean/tail latency
by roughly 65 % while the high-priority penalty stays well below the NP
penalty; non-preemptive variants waste no resources.
"""

from __future__ import annotations

from repro.experiments.figures import figure7_two_priority_reference
from repro.experiments.reporting import format_comparison
from repro.workloads.scenarios import HIGH, LOW


def test_figure7_two_priority_reference(benchmark, record_series):
    comparison = benchmark.pedantic(
        figure7_two_priority_reference,
        kwargs={"num_jobs": 600, "seed": 13},
        rounds=1,
        iterations=1,
    )
    record_series(
        "figure7_two_priority_reference",
        format_comparison(comparison, "Figure 7 — reference two-priority setup"),
    )
    assert comparison.relative_difference("DA(0/20)", LOW, "mean") < -45.0
    assert comparison.relative_difference("DA(0/20)", HIGH, "mean") < comparison.relative_difference(
        "NP", HIGH, "mean"
    )
    assert comparison.result("P").resource_waste > 0.0
    assert comparison.result("DA(0/20)").resource_waste == 0.0
